//! Immutable simple undirected graphs in compressed sparse row form.
//!
//! [`Graph`] is the input type of every algorithm in this workspace: the
//! distributed simulator builds its topology from it, the centralized
//! analyses read adjacency from it, and the generators produce it via
//! [`GraphBuilder`].
//!
//! Nodes are dense indices `0..n`. Edges are undirected and simple
//! (no self-loops, no parallel edges); the builder deduplicates. For the
//! counting conventions of the paper (Definition 1) each undirected edge is
//! viewed as two directed edges — that convention lives in
//! [`crate::density`], not here.
//!
//! # Examples
//!
//! ```
//! use graphs::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(0, 2));
//! assert_eq!(g.degree(3), 0);
//! ```

use crate::bitset::FixedBitSet;

/// An immutable simple undirected graph.
///
/// Adjacency is stored twice: as sorted CSR neighbor lists (cache-friendly
/// iteration, `O(log deg)` membership) and, when enabled, as per-node bit
/// rows (`O(1)` membership and word-parallel intersection — the hot path of
/// all density computations). Bit rows cost `n²/8` bytes; the builder
/// enables them automatically below [`GraphBuilder::AUTO_BITSET_LIMIT`]
/// nodes and callers can override via [`GraphBuilder::bitset_rows`].
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists, length `2m`.
    neighbors: Vec<usize>,
    /// Optional adjacency bit rows, length `n` when present.
    rows: Option<Vec<FixedBitSet>>,
    edge_count: usize,
}

impl Graph {
    /// Builds the empty graph on `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Builds the complete graph on `n` nodes.
    #[must_use]
    pub fn complete(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node indices.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.node_count()
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. Self-queries return `false`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        assert!(u < self.node_count() && v < self.node_count(), "node out of range");
        if u == v {
            return false;
        }
        match &self.rows {
            Some(rows) => rows[u].contains(v),
            None => {
                // Probe from the lower-degree endpoint.
                let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
                self.neighbors(a).binary_search(&b).is_ok()
            }
        }
    }

    /// The adjacency bit row of `v`, if bit rows were built.
    #[must_use]
    pub fn row(&self, v: usize) -> Option<&FixedBitSet> {
        self.rows.as_ref().map(|rows| &rows[v])
    }

    /// `true` if adjacency bit rows are available.
    #[must_use]
    pub fn has_rows(&self) -> bool {
        self.rows.is_some()
    }

    /// Heap bytes held by the graph, broken down by component.
    ///
    /// `rows_bytes` is 0 whenever bit rows are off — which
    /// [`RowPolicy::Auto`](GraphBuilder::bitset_rows) guarantees above
    /// [`GraphBuilder::AUTO_BITSET_LIMIT`] nodes.
    #[must_use]
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            nodes_bytes: self.offsets.len() * std::mem::size_of::<usize>(),
            edges_bytes: self.neighbors.len() * std::mem::size_of::<usize>(),
            rows_bytes: self.rows.as_ref().map_or(0, |rows| {
                rows.iter().map(|r| r.capacity().div_ceil(64) * 8).sum::<usize>()
                    + rows.len() * std::mem::size_of::<FixedBitSet>()
            }),
        }
    }

    /// Number of neighbors of `v` inside `set`.
    ///
    /// Uses the bit row when available, otherwise scans the shorter side.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `set.capacity() != n`.
    #[must_use]
    pub fn degree_into(&self, v: usize, set: &FixedBitSet) -> usize {
        assert_eq!(set.capacity(), self.node_count(), "set capacity must equal node count");
        match &self.rows {
            Some(rows) => rows[v].intersection_count(set),
            None => self.neighbors(v).iter().filter(|&&u| set.contains(u)).count(),
        }
    }

    /// Edges of the graph as `(u, v)` pairs with `u < v`, in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// The subgraph induced by `set`, together with the mapping from new
    /// indices to original node ids.
    ///
    /// # Panics
    ///
    /// Panics if `set.capacity() != n`.
    #[must_use]
    pub fn induced_subgraph(&self, set: &FixedBitSet) -> (Graph, Vec<usize>) {
        assert_eq!(set.capacity(), self.node_count(), "set capacity must equal node count");
        let members = set.to_vec();
        let mut index_of = vec![usize::MAX; self.node_count()];
        for (i, &v) in members.iter().enumerate() {
            index_of[v] = i;
        }
        let mut b = GraphBuilder::new(members.len());
        for &v in &members {
            for &u in self.neighbors(v) {
                if u > v && set.contains(u) {
                    b.add_edge(index_of[v], index_of[u]);
                }
            }
        }
        (b.build(), members)
    }

    /// Connected components of the subgraph induced by `set`, each returned
    /// as a sorted vector of *original* node ids.
    ///
    /// This is exactly the structure the exploration stage of
    /// `DistNearClique` discovers distributively for `G[S]`; the centralized
    /// version here is used by the reference implementation and by tests.
    ///
    /// # Panics
    ///
    /// Panics if `set.capacity() != n`.
    #[must_use]
    pub fn components_within(&self, set: &FixedBitSet) -> Vec<Vec<usize>> {
        assert_eq!(set.capacity(), self.node_count(), "set capacity must equal node count");
        let mut seen = FixedBitSet::new(self.node_count());
        let mut components = Vec::new();
        for start in set.iter() {
            if seen.contains(start) {
                continue;
            }
            let mut comp = vec![start];
            seen.insert(start);
            let mut frontier = vec![start];
            while let Some(v) = frontier.pop() {
                for &u in self.neighbors(v) {
                    if set.contains(u) && !seen.contains(u) {
                        seen.insert(u);
                        comp.push(u);
                        frontier.push(u);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Breadth-first distances from `source` (`usize::MAX` = unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        assert!(source < self.node_count(), "node out of range");
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Graph diameter (largest finite BFS distance); `None` when
    /// disconnected or empty.
    #[must_use]
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut best = 0;
        for v in self.nodes() {
            let d = self.bfs_distances(v);
            let mut local_max = 0;
            for &x in &d {
                if x == usize::MAX {
                    return None;
                }
                local_max = local_max.max(x);
            }
            best = best.max(local_max);
        }
        Some(best)
    }
}

/// Incremental builder for [`Graph`].
///
/// Accepts duplicate edges and both orientations; self-loops are rejected
/// with a panic (the paper's graphs are simple).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
    rows: RowPolicy,
    /// `true` once an edge arrived through a path that tolerates
    /// duplicates; forces the sort + dedup pass at build time.
    needs_dedup: bool,
}

/// Heap bytes held by each component of a [`Graph`].
///
/// Returned by [`Graph::memory_footprint`]; used by tests and benches to
/// assert the per-node/per-edge memory budget (bit rows must stay off for
/// scale-tier instances).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bytes of the CSR offset array (`(n + 1) × 8`).
    pub nodes_bytes: usize,
    /// Bytes of the concatenated neighbor lists (`2m × 8`).
    pub edges_bytes: usize,
    /// Bytes of the adjacency bit rows (0 when rows are off).
    pub rows_bytes: usize,
}

impl MemoryFootprint {
    /// Total heap bytes across all components.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.nodes_bytes + self.edges_bytes + self.rows_bytes
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RowPolicy {
    Auto,
    Always,
    Never,
}

impl GraphBuilder {
    /// Below this node count, adjacency bit rows are built automatically
    /// (they cost `n²/8` bytes: 32 MiB at the limit).
    pub const AUTO_BITSET_LIMIT: usize = 16_384;

    /// Starts a builder for a graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new(), rows: RowPolicy::Auto, needs_dedup: false }
    }

    /// Forces adjacency bit rows on (`true`) or off (`false`), overriding
    /// the automatic size heuristic.
    pub fn bitset_rows(&mut self, enabled: bool) -> &mut Self {
        self.rows = if enabled { RowPolicy::Always } else { RowPolicy::Never };
        self
    }

    /// Adds the undirected edge `{u, v}`. Duplicates are deduplicated at
    /// [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.needs_dedup = true;
        self.push_edge(u, v);
        self
    }

    /// Adds the undirected edge `{u, v}` under the caller's guarantee that
    /// it was not added before (in either orientation).
    ///
    /// Unlike [`add_edge`](Self::add_edge), edges added only through the
    /// unique-edge APIs skip the `O(m log m)` sort + dedup pass at
    /// [`build`](Self::build) time — the fast path for generators that
    /// already produce each pair at most once. Uniqueness is verified in
    /// debug builds (at build time) and trusted in release builds.
    ///
    /// # Panics
    ///
    /// As for [`add_edge`](Self::add_edge).
    pub fn add_unique_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.push_edge(u, v);
        self
    }

    fn push_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self-loops are not allowed (u = v = {u})");
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range for n = {}", self.n);
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Adds every edge from an iterator of pairs.
    ///
    /// # Panics
    ///
    /// As for [`add_edge`](Self::add_edge).
    pub fn extend_edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Adds every edge from an iterator of pairs guaranteed by the caller to
    /// be mutually distinct (and distinct from all previously added edges).
    ///
    /// See [`add_unique_edge`](Self::add_unique_edge) for the contract and
    /// the payoff: builders fed exclusively through the unique-edge APIs
    /// skip the global sort + dedup at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// As for [`add_edge`](Self::add_edge).
    pub fn extend_unique_edges<I: IntoIterator<Item = (usize, usize)>>(
        &mut self,
        iter: I,
    ) -> &mut Self {
        for (u, v) in iter {
            self.push_edge(u, v);
        }
        self
    }

    /// Adds all `|a| * |b|` edges of a complete bipartite connection between
    /// two disjoint node slices (used by the Figure 1 construction).
    ///
    /// # Panics
    ///
    /// Panics if the slices share a node or contain out-of-range nodes.
    pub fn add_biclique(&mut self, a: &[usize], b: &[usize]) -> &mut Self {
        for &u in a {
            for &v in b {
                self.add_edge(u, v);
            }
        }
        self
    }

    /// Adds all `|c| choose 2` edges among a node slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice contains duplicates (detected as self-loop) or
    /// out-of-range nodes.
    pub fn add_clique(&mut self, c: &[usize]) -> &mut Self {
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                self.add_edge(u, v);
            }
        }
        self
    }

    /// Finalizes into an immutable [`Graph`].
    #[must_use]
    pub fn build(&self) -> Graph {
        let n = self.n;
        // Edges from the unique-edge fast path skip the O(m log m) sort +
        // dedup (and its O(m) clone): per-node neighbor slices are sorted
        // individually below either way.
        let edges: std::borrow::Cow<'_, [(usize, usize)]> = if self.needs_dedup {
            let mut e = self.edges.clone();
            e.sort_unstable();
            e.dedup();
            std::borrow::Cow::Owned(e)
        } else {
            #[cfg(debug_assertions)]
            {
                let mut check = self.edges.clone();
                check.sort_unstable();
                check.dedup();
                assert_eq!(
                    check.len(),
                    self.edges.len(),
                    "edges passed to the unique-edge APIs must be distinct"
                );
            }
            std::borrow::Cow::Borrowed(&self.edges)
        };
        let edges: &[(usize, usize)] = &edges;

        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0usize; 2 * edges.len()];
        for &(u, v) in edges {
            neighbors[cursor[u]] = v;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Per-node slices are not sorted by placement (edge order is
        // arbitrary on the unique path, and even lexicographic edge order
        // only sorts first-endpoint slices); sort each explicitly.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        let build_rows = match self.rows {
            RowPolicy::Always => true,
            RowPolicy::Never => false,
            RowPolicy::Auto => n <= Self::AUTO_BITSET_LIMIT,
        };
        let rows = build_rows.then(|| {
            let mut rows: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
            for &(u, v) in edges {
                rows[u].insert(v);
                rows[v].insert(u);
            }
            rows
        });

        Graph { offsets, neighbors, rows, edge_count: edges.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolated() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_isolated();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_symmetric_and_no_self_edge() {
        let g = triangle_plus_isolated();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn duplicate_and_reversed_edges_dedup() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(3, 5).add_edge(3, 1).add_edge(3, 4).add_edge(3, 0);
        let g = b.build();
        assert_eq!(g.neighbors(3), &[0, 1, 4, 5]);
    }

    #[test]
    fn has_edge_with_and_without_rows_agree() {
        let mut with_rows = GraphBuilder::new(50);
        let mut without = GraphBuilder::new(50);
        with_rows.bitset_rows(true);
        without.bitset_rows(false);
        let edges = [(0, 1), (1, 2), (10, 40), (25, 26), (0, 49)];
        with_rows.extend_edges(edges.iter().copied());
        without.extend_edges(edges.iter().copied());
        let gw = with_rows.build();
        let go = without.build();
        assert!(gw.has_rows() && !go.has_rows());
        for u in 0..50 {
            for v in 0..50 {
                assert_eq!(gw.has_edge(u, v), go.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn complete_graph() {
        let g = Graph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn degree_into_matches_scan() {
        let g = Graph::complete(8);
        let set = FixedBitSet::from_iter_with_capacity(8, [0, 1, 2, 7]);
        assert_eq!(g.degree_into(0, &set), 3); // 1, 2, 7 (not itself)
        assert_eq!(g.degree_into(3, &set), 4);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(1, 3).add_edge(3, 5).add_edge(1, 5).add_edge(0, 1);
        let g = b.build();
        let set = FixedBitSet::from_iter_with_capacity(6, [1, 3, 5]);
        let (sub, mapping) = g.induced_subgraph(&set);
        assert_eq!(mapping, vec![1, 3, 5]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && sub.has_edge(0, 2));
    }

    #[test]
    fn components_within_finds_induced_components() {
        // 0-1 edge, 2 isolated (in set), 3-4 edge but 4 not in set.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).add_edge(3, 4);
        let g = b.build();
        let set = FixedBitSet::from_iter_with_capacity(5, [0, 1, 2, 3]);
        let comps = g.components_within(&set);
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn bfs_and_diameter_on_path() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g = b.build();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = triangle_plus_isolated();
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle_plus_isolated();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn unique_edges_build_same_graph_as_dedup_path() {
        let edges = [(3, 5), (1, 3), (0, 4), (3, 0), (2, 5)];
        let mut dedup = GraphBuilder::new(6);
        dedup.extend_edges(edges.iter().copied());
        let mut unique = GraphBuilder::new(6);
        unique.extend_unique_edges(edges.iter().copied());
        let a = dedup.build();
        let b = unique.build();
        assert_eq!(a.edge_count(), b.edge_count());
        for v in 0..6 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "must be distinct")]
    fn unique_edges_duplicate_caught_in_debug() {
        let mut b = GraphBuilder::new(3);
        b.add_unique_edge(0, 1).add_unique_edge(1, 0);
        let _ = b.build();
    }

    #[test]
    fn rows_stay_off_above_auto_limit() {
        let n = GraphBuilder::AUTO_BITSET_LIMIT + 1;
        let mut b = GraphBuilder::new(n);
        b.add_edge(0, n - 1);
        let g = b.build();
        assert!(!g.has_rows(), "RowPolicy::Auto must not build bit rows above the limit");
        assert_eq!(g.memory_footprint().rows_bytes, 0);
    }

    #[test]
    fn memory_footprint_accounts_for_each_component() {
        let g = triangle_plus_isolated(); // n = 4, m = 3, rows on (Auto)
        let fp = g.memory_footprint();
        assert_eq!(fp.nodes_bytes, 5 * std::mem::size_of::<usize>());
        assert_eq!(fp.edges_bytes, 6 * std::mem::size_of::<usize>());
        assert!(fp.rows_bytes >= 4 * 8, "4 bit rows of at least one word each");
        assert_eq!(fp.total_bytes(), fp.nodes_bytes + fp.edges_bytes + fp.rows_bytes);

        let mut no_rows = GraphBuilder::new(4);
        no_rows.bitset_rows(false);
        no_rows.add_edge(0, 1);
        assert_eq!(no_rows.build().memory_footprint().rows_bytes, 0);
    }

    #[test]
    fn biclique_and_clique_helpers() {
        let mut b = GraphBuilder::new(6);
        b.add_clique(&[0, 1, 2]).add_biclique(&[0, 1, 2], &[3, 4]);
        let g = b.build();
        assert_eq!(g.edge_count(), 3 + 6);
        assert!(g.has_edge(2, 4));
        assert!(!g.has_edge(3, 4));
        assert_eq!(g.degree(5), 0);
    }
}
