//! Graph substrate for the near-clique reproduction.
//!
//! This crate provides everything below the distributed layer of the
//! workspace reproducing Brakerski & Patt-Shamir, *Distributed Discovery
//! of Large Near-Cliques* (PODC 2009):
//!
//! * [`graph`] — immutable simple undirected graphs (CSR + bit rows) and
//!   [`GraphBuilder`].
//! * [`bitset`] — the packed [`bitset::FixedBitSet`] all set kernels run on.
//! * [`density`] — the paper's Definition 1 density, `K_ε` (Eq. 1) and
//!   `T_ε` (Eq. 2) operators: the centralized reference semantics for the
//!   distributed protocol.
//! * [`generators`] — workloads with planted ground truth, including the
//!   paper's Figure 1 counterexample and the §6 impossibility graph.
//! * [`exact`], [`peel`], [`quasi`] — centralized comparators: exact
//!   maximum clique (ground truth at small `n`), Charikar peeling, and an
//!   Abello-style quasi-clique GRASP.
//!
//! # Quick example
//!
//! ```
//! use graphs::{GraphBuilder, bitset::FixedBitSet, density};
//!
//! // A 4-clique with one edge missing is a 1/6-near clique.
//! let mut b = GraphBuilder::new(4);
//! b.extend_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
//! let g = b.build();
//! let all = FixedBitSet::full(4);
//! assert!(density::is_near_clique(&g, &all, 1.0 / 6.0));
//! assert!(!density::is_near_clique(&g, &all, 0.1));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitset;
pub mod density;
pub mod exact;
pub mod flow;
pub mod generators;
pub mod goldberg;
pub mod graph;
pub mod io;
pub mod kcore;
pub mod peel;
pub mod quasi;
pub mod triangles;

pub use bitset::FixedBitSet;
pub use generators::stream::EdgeStream;
pub use graph::{Graph, GraphBuilder, MemoryFootprint};

#[cfg(test)]
mod proptests {
    //! Crate-level property tests tying the modules together.

    use crate::bitset::FixedBitSet;
    use crate::density;
    use crate::generators;
    use crate::graph::{Graph, GraphBuilder};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Strategy: a small random graph given by (n, edge list).
    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2usize..=max_n).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
                let mut b = GraphBuilder::new(n);
                for (u, v) in pairs {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            })
        })
    }

    fn arb_subset(n: usize) -> impl Strategy<Value = FixedBitSet> {
        proptest::collection::vec(proptest::bool::ANY, n).prop_map(move |bits| {
            FixedBitSet::from_iter_with_capacity(
                n,
                bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
            )
        })
    }

    proptest! {
        /// Density is within [0, 1] and equals 1 exactly on near-cliques
        /// with ε = 0.
        #[test]
        fn density_in_unit_interval(g in arb_graph(20)) {
            let n = g.node_count();
            let all = FixedBitSet::full(n);
            let d = density::density(&g, &all);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert_eq!(d >= 1.0, density::is_near_clique(&g, &all, 0.0));
        }

        /// K_ε is monotone in ε: larger ε admits more nodes.
        #[test]
        fn k_eps_monotone_in_eps(g in arb_graph(16)) {
            let n = g.node_count();
            let x = FixedBitSet::from_iter_with_capacity(n, 0..(n / 2).max(1));
            let k1 = density::k_eps(&g, &x, 0.1);
            let k2 = density::k_eps(&g, &x, 0.4);
            prop_assert!(k1.is_subset(&k2));
        }

        /// K_0(X) ⊆ K_ε(X) and T_ε(X) ⊆ K_{2ε²}(X) structurally.
        #[test]
        fn t_eps_subset_of_inner_k(g in arb_graph(16)) {
            let n = g.node_count();
            let x = FixedBitSet::from_iter_with_capacity(n, [0, n - 1]);
            let eps = 0.3;
            let t = density::t_eps(&g, &x, eps);
            let k_inner = density::k_eps(&g, &x, 2.0 * eps * eps);
            prop_assert!(t.is_subset(&k_inner));
        }

        /// Paper §4 key observation: if D is a clique then D ⊆ T(D) and
        /// T(D) is a clique. Verified on planted instances.
        #[test]
        fn clique_fixed_point(seed in 0u64..500, k in 3usize..10) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = generators::planted_clique(30, k, 0.2, &mut rng);
            let t = density::t_strict(&p.graph, &p.dense_set);
            prop_assert!(p.dense_set.is_subset(&t));
            prop_assert!(density::is_near_clique(&p.graph, &t, 0.0));
        }

        /// Induced subgraph density equals set density in the host graph.
        #[test]
        fn induced_density_matches(g in arb_graph(16), seed in any::<u64>()) {
            let n = g.node_count();
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let mut set = FixedBitSet::new(n);
            for v in 0..n {
                if rng.gen_bool(0.5) {
                    set.insert(v);
                }
            }
            let (sub, _) = g.induced_subgraph(&set);
            let sub_all = FixedBitSet::full(sub.node_count());
            let d_host = density::density(&g, &set);
            let d_sub = density::density(&sub, &sub_all);
            prop_assert!((d_host - d_sub).abs() < 1e-12);
        }

        /// components_within partitions the set.
        #[test]
        fn components_partition(g in arb_graph(16)) {
            let n = g.node_count();
            let set = FixedBitSet::from_iter_with_capacity(n, (0..n).step_by(2));
            let comps = g.components_within(&set);
            let mut seen = FixedBitSet::new(n);
            for comp in &comps {
                for &v in comp {
                    prop_assert!(set.contains(v));
                    prop_assert!(seen.insert(v), "node {} in two components", v);
                }
            }
            prop_assert_eq!(seen.len(), set.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Subset relation for arbitrary subsets: degree_into never exceeds
        /// both degree and set size.
        #[test]
        fn degree_into_bounds(g in arb_graph(20), idx in any::<prop::sample::Index>()) {
            let n = g.node_count();
            let strategy_set = (0..n).filter(|v| v % 3 != 0);
            let set = FixedBitSet::from_iter_with_capacity(n, strategy_set);
            let v = idx.index(n);
            let d = g.degree_into(v, &set);
            prop_assert!(d <= g.degree(v));
            prop_assert!(d <= set.len());
        }
    }

    #[test]
    fn arb_subset_strategy_compiles() {
        // Smoke-test the helper so it is exercised even though the main
        // suite above picks deterministic subsets.
        use proptest::strategy::ValueTree;
        let mut runner = proptest::test_runner::TestRunner::default();
        let tree = arb_subset(10).new_tree(&mut runner).unwrap();
        let set = tree.current();
        assert!(set.capacity() == 10);
    }
}
