//! k-core decomposition.
//!
//! The *k-core* is the maximal induced subgraph of minimum degree ≥ `k`;
//! the *core number* of a node is the largest `k` whose core contains it.
//! Cores are the classic cheap pre-filter for dense-subgraph search — an
//! ε-near clique of `t` nodes has average internal degree `(1−ε)(t−1)`,
//! so its densest part survives deep into the core hierarchy — and the
//! degeneracy ordering computed here is also a common accelerator for
//! exact clique search.
//!
//! # Examples
//!
//! ```
//! use graphs::{GraphBuilder, kcore};
//!
//! let mut b = GraphBuilder::new(6);
//! b.add_clique(&[0, 1, 2, 3]).add_edge(3, 4).add_edge(4, 5);
//! let g = b.build();
//! let cores = kcore::core_numbers(&g);
//! assert_eq!(cores[0], 3); // clique member: 3-core
//! assert_eq!(cores[5], 1); // path tail: 1-core
//! assert_eq!(kcore::degeneracy(&g), 3);
//! assert_eq!(kcore::k_core(&g, 3).to_vec(), vec![0, 1, 2, 3]);
//! ```

use crate::bitset::FixedBitSet;
use crate::graph::Graph;

/// Core number of every node (0 for isolated nodes), in `O(m + n)` time
/// via the Matula–Beck bucket algorithm.
#[must_use]
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort nodes by degree.
    let mut bin_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin_start[d + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut pos = vec![0usize; n]; // position of node in `order`
    let mut order = vec![0usize; n]; // nodes sorted by current degree
    {
        let mut cursor = bin_start.clone();
        for v in 0..n {
            pos[v] = cursor[degree[v]];
            order[pos[v]] = v;
            cursor[degree[v]] += 1;
        }
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = order[i];
        core[v] = degree[v];
        for &u in g.neighbors(v) {
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first node of its
                // current bucket, then shrink the bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bin_start[du];
                let w = order[pw];
                if u != w {
                    order.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin_start[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The degeneracy of the graph: the largest `k` with a non-empty k-core.
#[must_use]
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// The k-core as a node set (possibly empty).
#[must_use]
pub fn k_core(g: &Graph, k: usize) -> FixedBitSet {
    let cores = core_numbers(g);
    FixedBitSet::from_iter_with_capacity(
        g.node_count(),
        cores.iter().enumerate().filter(|(_, &c)| c >= k).map(|(v, _)| v),
    )
}

/// The innermost (maximum-k) core as a node set — a natural dense-set
/// baseline (used by experiment E11's `k-core` finder row).
#[must_use]
pub fn innermost_core(g: &Graph) -> FixedBitSet {
    k_core(g, degeneracy(g))
}

/// A degeneracy ordering: nodes in the elimination order of the peeling
/// (each node has ≤ degeneracy neighbors later in the order).
#[must_use]
pub fn degeneracy_ordering(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let cores = core_numbers(g);
    // Re-run a simple peel guided by current degree; O(m log n) with a
    // BTreeSet keyed by (degree, node) is fine at our scales and keeps
    // the code independently checkable against `core_numbers`.
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut queue: std::collections::BTreeSet<(usize, usize)> =
        (0..n).map(|v| (degree[v], v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while let Some(&(d, v)) = queue.iter().next() {
        queue.remove(&(d, v));
        removed[v] = true;
        order.push(v);
        debug_assert!(d <= cores[v].max(d));
        for &u in g.neighbors(v) {
            if !removed[u] {
                queue.remove(&(degree[u], u));
                degree[u] -= 1;
                queue.insert((degree[u], u));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_edgeless() {
        assert!(core_numbers(&Graph::empty(0)).is_empty());
        assert_eq!(core_numbers(&Graph::empty(4)), vec![0, 0, 0, 0]);
        assert_eq!(degeneracy(&Graph::empty(4)), 0);
    }

    #[test]
    fn clique_core_numbers() {
        let g = Graph::complete(7);
        assert_eq!(core_numbers(&g), vec![6; 7]);
        assert_eq!(degeneracy(&g), 6);
        assert_eq!(innermost_core(&g).len(), 7);
    }

    #[test]
    fn path_is_one_degenerate() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g = b.build();
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(core_numbers(&g), vec![1; 5]);
    }

    #[test]
    fn clique_with_tail() {
        let mut b = GraphBuilder::new(7);
        b.add_clique(&[0, 1, 2, 3]).add_edge(3, 4).add_edge(4, 5).add_edge(5, 6);
        let g = b.build();
        let cores = core_numbers(&g);
        assert_eq!(&cores[..4], &[3, 3, 3, 3]);
        assert_eq!(&cores[4..], &[1, 1, 1]);
        assert_eq!(k_core(&g, 2).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&g, 4).len(), 0);
    }

    #[test]
    fn core_numbers_match_definition_on_random_graphs() {
        // Definitional check: the k-core induced subgraph has min degree
        // >= k, and adding any excluded node would break that maximality
        // chain (checked via the peeling invariant instead: every node's
        // degree into its own core is >= its core number).
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let g = generators::gnp(80, 0.08, &mut rng);
            let cores = core_numbers(&g);
            for k in 1..=degeneracy(&g) {
                let core = k_core(&g, k);
                for v in core.iter() {
                    assert!(
                        g.degree_into(v, &core) >= k,
                        "node {v} has degree {} in the {k}-core",
                        g.degree_into(v, &core)
                    );
                }
            }
            // Peeling invariant.
            let full = crate::bitset::FixedBitSet::full(80);
            for (v, &core) in cores.iter().enumerate() {
                assert!(g.degree_into(v, &full) >= core);
            }
        }
    }

    #[test]
    fn degeneracy_ordering_has_bounded_back_degree() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::gnp(60, 0.15, &mut rng);
        let d = degeneracy(&g);
        let order = degeneracy_ordering(&g);
        assert_eq!(order.len(), 60);
        let mut position = vec![0usize; 60];
        for (i, &v) in order.iter().enumerate() {
            position[v] = i;
        }
        for &v in &order {
            let later = g.neighbors(v).iter().filter(|&&u| position[u] > position[v]).count();
            assert!(later <= d, "node {v} has {later} later neighbors > degeneracy {d}");
        }
    }

    #[test]
    fn planted_clique_survives_to_deep_core() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = generators::planted_clique(150, 25, 0.05, &mut rng);
        let inner = innermost_core(&p.graph);
        assert!(p.recall(&inner) > 0.9, "recall {}", p.recall(&inner));
    }
}
