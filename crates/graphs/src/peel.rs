//! Greedy peeling for densest subgraphs (Charikar's 2-approximation).
//!
//! The paper situates itself against centralized dense-subgraph work
//! (Feige–Kortsarz–Peleg's DkS \[7\], Feige–Langberg \[8\]). The standard
//! practical centralized baseline in that family is Charikar's greedy
//! peeling: repeatedly delete the minimum-degree node; the best prefix is a
//! 2-approximation of the maximum average-degree subgraph. We provide the
//! classic variant plus a size-constrained variant (`densest_at_least_k`)
//! that experiments use to match the paper's "large" requirement.

use crate::bitset::FixedBitSet;
use crate::density;
use crate::graph::Graph;

/// Result of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelResult {
    /// The selected node set.
    pub set: FixedBitSet,
    /// Average degree (`2·edges/|set|`) of the selected set.
    pub average_degree: f64,
    /// Pair density (Definition 1 convention) of the selected set.
    pub pair_density: f64,
}

/// Charikar's greedy peeling: returns the subgraph maximizing average
/// degree among all peeling prefixes (a 2-approximation of the densest
/// subgraph).
///
/// Runs in `O(m + n log n)` time.
///
/// # Examples
///
/// ```
/// use graphs::{GraphBuilder, peel};
///
/// let mut b = GraphBuilder::new(6);
/// b.add_clique(&[0, 1, 2, 3]).add_edge(4, 5);
/// let r = peel::densest_subgraph(&b.build());
/// assert_eq!(r.set.to_vec(), vec![0, 1, 2, 3]);
/// ```
#[must_use]
pub fn densest_subgraph(g: &Graph) -> PeelResult {
    peel_with_constraint(g, 1)
}

/// Peeling constrained to sets of at least `k` nodes: among peeling
/// prefixes with `≥ k` nodes, the one with maximum average degree.
///
/// This matches the "large near-clique" objective better than the
/// unconstrained version (which may return a tiny very-dense core) and is
/// the E11 baseline configuration.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n` on a non-empty graph.
#[must_use]
pub fn densest_at_least_k(g: &Graph, k: usize) -> PeelResult {
    peel_with_constraint(g, k)
}

fn peel_with_constraint(g: &Graph, min_size: usize) -> PeelResult {
    let n = g.node_count();
    if n == 0 {
        return PeelResult { set: FixedBitSet::new(0), average_degree: 0.0, pair_density: 1.0 };
    }
    assert!(min_size >= 1 && min_size <= n, "min_size = {min_size} out of range 1..={n}");

    // Bucket queue over degrees for O(m + n) peeling.
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut alive = FixedBitSet::full(n);
    let mut removed = vec![false; n];
    let mut edges_alive = g.edge_count();
    let mut order: Vec<usize> = Vec::with_capacity(n); // peeling order
    let mut edges_at_prefix: Vec<usize> = Vec::with_capacity(n);

    let mut cursor = 0usize; // lowest possibly-non-empty bucket
    for _ in 0..n {
        // Find the current minimum-degree alive node (lazy deletion).
        let v = loop {
            while cursor < buckets.len() && buckets[cursor].is_empty() {
                cursor += 1;
            }
            assert!(cursor < buckets.len(), "bucket queue exhausted early");
            let cand = buckets[cursor].pop().expect("bucket non-empty");
            if !removed[cand] && degree[cand] == cursor {
                break cand;
            }
            // Stale entry; skip.
        };
        edges_at_prefix.push(edges_alive);
        order.push(v);
        removed[v] = true;
        alive.remove(v);
        edges_alive -= degree[v];
        for &u in g.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
                if degree[u] < cursor {
                    cursor = degree[u];
                }
                buckets[degree[u]].push(u);
            }
        }
    }

    // Prefix i (before removing order[i]) has n - i nodes and
    // edges_at_prefix[i] edges. Pick the best with ≥ min_size nodes.
    let mut best_i = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &edges) in edges_at_prefix.iter().enumerate() {
        let size = n - i;
        if size < min_size {
            break;
        }
        let score = 2.0 * edges as f64 / size as f64;
        if score > best_score {
            best_score = score;
            best_i = i;
        }
    }

    let mut set = FixedBitSet::full(n);
    for &v in &order[..best_i] {
        set.remove(v);
    }
    let pair_density = density::density(g, &set);
    PeelResult { set, average_degree: best_score.max(0.0), pair_density }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::planted_clique;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph() {
        let r = densest_subgraph(&Graph::empty(0));
        assert!(r.set.is_empty());
    }

    #[test]
    fn isolated_nodes_graph() {
        let r = densest_subgraph(&Graph::empty(5));
        assert_eq!(r.average_degree, 0.0);
    }

    #[test]
    fn clique_with_pendant_peels_to_clique() {
        let mut b = GraphBuilder::new(7);
        b.add_clique(&[0, 1, 2, 3, 4]).add_edge(0, 5).add_edge(5, 6);
        let r = densest_subgraph(&b.build());
        assert_eq!(r.set.to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.average_degree, 4.0);
        assert_eq!(r.pair_density, 1.0);
    }

    #[test]
    fn recovers_planted_clique_from_noise() {
        let mut rng = StdRng::seed_from_u64(41);
        let p = planted_clique(200, 30, 0.05, &mut rng);
        let r = densest_subgraph(&p.graph);
        assert!(p.recall(&r.set) > 0.9, "recall = {}", p.recall(&r.set));
    }

    #[test]
    fn at_least_k_respects_size_floor() {
        let mut b = GraphBuilder::new(10);
        // Tiny very dense core (triangle) + a moderately dense 7-node part.
        b.add_clique(&[0, 1, 2]);
        b.extend_edges([(3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (3, 9), (3, 5)]);
        let g = b.build();
        let r = densest_at_least_k(&g, 8);
        assert!(r.set.len() >= 8);
    }

    #[test]
    fn charikar_guarantee_on_random_graph() {
        // The peel result's average degree must be at least half the
        // maximum average degree over all induced prefixes, in particular
        // at least half the whole graph's average degree.
        let mut rng = StdRng::seed_from_u64(42);
        let g = crate::generators::gnp(150, 0.1, &mut rng);
        let r = densest_subgraph(&g);
        let whole = 2.0 * g.edge_count() as f64 / 150.0;
        assert!(r.average_degree + 1e-9 >= whole / 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_min_size_panics() {
        let _ = densest_at_least_k(&Graph::empty(3), 0);
    }
}
