//! Exact densest subgraph via Goldberg's flow construction.
//!
//! The *densest subgraph* problem — maximize `|E(S)| / |S|` — is solvable
//! exactly in polynomial time (Goldberg 1984) by binary search over the
//! density guess `g` with one min-cut per step: for `g = p/q` build
//!
//! * source → `v` with capacity `q·deg(v)` for every node,
//! * `u → v` and `v → u` with capacity `q` for every edge,
//! * `v` → sink with capacity `2p`,
//!
//! and observe the min cut equals `2mq − 2·max_S(q·|E(S)| − p·|S|)`; a cut
//! smaller than `2mq` certifies a subgraph of density `> g`, and the
//! source side of the cut is such a subgraph.
//!
//! This gives the *exact* counterpart of [`crate::peel`]'s Charikar
//! 2-approximation — the tests here verify that guarantee empirically —
//! and the strongest "density at any size" baseline for experiment E11.
//!
//! # Examples
//!
//! ```
//! use graphs::{GraphBuilder, goldberg};
//!
//! let mut b = GraphBuilder::new(7);
//! b.add_clique(&[0, 1, 2, 3, 4]).add_edge(0, 5).add_edge(5, 6);
//! let r = goldberg::densest_subgraph_exact(&b.build());
//! assert_eq!(r.set.to_vec(), vec![0, 1, 2, 3, 4]);
//! assert!((r.density - 2.0).abs() < 1e-9); // 10 edges / 5 nodes
//! ```

use crate::bitset::FixedBitSet;
use crate::flow::FlowNetwork;
use crate::graph::Graph;

/// Result of the exact densest-subgraph computation.
#[derive(Clone, Debug)]
pub struct DensestResult {
    /// A maximum-density node set (non-empty on graphs with ≥ 1 edge).
    pub set: FixedBitSet,
    /// Its exact density `|E(S)| / |S|` (edges-per-node, *not* the pair
    /// density of Definition 1).
    pub density: f64,
}

/// Whether some subgraph has density strictly greater than `p/q`;
/// if so, returns one such set.
fn denser_than(g: &Graph, p: u64, q: u64) -> Option<FixedBitSet> {
    let n = g.node_count();
    let m = g.edge_count() as u64;
    let source = n;
    let sink = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    for v in 0..n {
        net.add_arc(source, v, q * g.degree(v) as u64);
        net.add_arc(v, sink, 2 * p);
    }
    for (u, v) in g.edges() {
        net.add_arc(u, v, q);
        net.add_arc(v, u, q);
    }
    let cut = net.max_flow(source, sink);
    if cut >= 2 * m * q {
        return None;
    }
    let side = net.residual_reachable(source);
    let set = FixedBitSet::from_iter_with_capacity(n, (0..n).filter(|&v| side[v]));
    debug_assert!(!set.is_empty(), "a cut below 2mq certifies a non-empty witness");
    Some(set)
}

/// Edges internal to `set` (undirected count).
fn internal_edges(g: &Graph, set: &FixedBitSet) -> usize {
    set.iter().map(|v| g.degree_into(v, set)).sum::<usize>() / 2
}

/// Computes an exact densest subgraph (maximum `|E(S)|/|S|`).
///
/// Runs `O(log n)` max-flows: candidate densities are fractions with
/// denominator ≤ `n`, so the search over the exact candidate set
/// converges after the interval shrinks below `1/n²`.
///
/// The empty graph yields the empty set with density 0.
#[must_use]
pub fn densest_subgraph_exact(g: &Graph) -> DensestResult {
    let n = g.node_count();
    if g.edge_count() == 0 {
        return DensestResult { set: FixedBitSet::new(n), density: 0.0 };
    }
    // Densities are fractions a/b with b ≤ n; two distinct values differ
    // by at least 1/n². Binary search on p/q with q = n² keeps all tests
    // in exact integer arithmetic.
    let q = (n as u64) * (n as u64);
    let mut lo = 0u64; // known achievable: density > lo/q certified below
    let mut hi = (g.edge_count() as u64) * (n as u64) * 2; // > m ≥ max density, scaled
    let mut witness: Option<FixedBitSet> = None;

    // Invariant: some set has density > lo/q (after first success);
    // no set has density > hi/q.
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        match denser_than(g, mid, q) {
            Some(set) => {
                witness = Some(set);
                lo = mid;
            }
            None => hi = mid,
        }
    }

    let set = witness.unwrap_or_else(|| {
        // No set denser than 0/q = 0 would mean no edges; guarded above,
        // but densest could be exactly the first mid when lo never moved:
        // fall back to a single edge.
        let (u, v) = g.edges().next().expect("edge exists");
        FixedBitSet::from_iter_with_capacity(n, [u, v])
    });
    let density = internal_edges(g, &set) as f64 / set.len() as f64;
    DensestResult { set, density }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;
    use crate::peel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force maximum density over all non-empty subsets (tiny n).
    fn brute_force_density(g: &Graph) -> f64 {
        let n = g.node_count();
        assert!(n <= 16, "brute force only for tiny graphs");
        let mut best = 0.0f64;
        for mask in 1u32..(1 << n) {
            let set =
                FixedBitSet::from_iter_with_capacity(n, (0..n).filter(|&v| mask & (1 << v) != 0));
            let d = internal_edges(g, &set) as f64 / set.len() as f64;
            best = best.max(d);
        }
        best
    }

    #[test]
    fn empty_and_edgeless() {
        let r = densest_subgraph_exact(&Graph::empty(0));
        assert_eq!(r.density, 0.0);
        let r2 = densest_subgraph_exact(&Graph::empty(5));
        assert!(r2.set.is_empty());
    }

    #[test]
    fn single_edge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let r = densest_subgraph_exact(&b.build());
        assert_eq!(r.set.to_vec(), vec![0, 1]);
        assert!((r.density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clique_density_is_half_k_minus_one() {
        let g = Graph::complete(8);
        let r = densest_subgraph_exact(&g);
        assert_eq!(r.set.len(), 8);
        assert!((r.density - 3.5).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..12 {
            let g = generators::gnp(10, 0.3 + 0.04 * (trial % 5) as f64, &mut rng);
            let exact = densest_subgraph_exact(&g);
            let brute = brute_force_density(&g);
            assert!(
                (exact.density - brute).abs() < 1e-9,
                "trial {trial}: flow {} vs brute {brute}",
                exact.density
            );
        }
    }

    #[test]
    fn charikar_is_within_factor_two() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..5 {
            let g = generators::gnp(80, 0.08, &mut rng);
            if g.edge_count() == 0 {
                continue;
            }
            let exact = densest_subgraph_exact(&g);
            let approx = peel::densest_subgraph(&g);
            // peel reports average degree = 2·density(edges-per-node).
            let approx_density = approx.average_degree / 2.0;
            assert!(
                approx_density + 1e-9 >= exact.density / 2.0,
                "Charikar bound violated: approx {approx_density} vs exact {}",
                exact.density
            );
            assert!(approx_density <= exact.density + 1e-9, "approx cannot beat exact");
        }
    }

    #[test]
    fn finds_planted_core() {
        let mut rng = StdRng::seed_from_u64(23);
        let p = generators::planted_clique(100, 20, 0.03, &mut rng);
        let r = densest_subgraph_exact(&p.graph);
        assert!(p.recall(&r.set) > 0.9, "recall {}", p.recall(&r.set));
        assert!(r.density >= 9.0, "density {} should approach (k-1)/2 = 9.5", r.density);
    }
}
