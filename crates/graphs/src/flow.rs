//! A compact Dinic max-flow, used by the exact densest-subgraph solver.
//!
//! Integer capacities, adjacency-list arcs with explicit reverse edges.
//! Sized for the flow networks [`crate::goldberg`] builds (`n + 2` nodes,
//! `Θ(m + n)` arcs); not a general-purpose flow library.

/// A directed flow network with integer capacities.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Arc heads; `arcs[i] ^ 1` is the reverse arc of `arcs[i]`.
    to: Vec<usize>,
    cap: Vec<u64>,
    /// Per-node outgoing arc indices.
    head: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network on `n` nodes with no arcs.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { to: Vec::new(), cap: Vec::new(), head: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.head.len()
    }

    /// Adds an arc `u → v` of capacity `cap` (with a zero-capacity
    /// reverse arc), returning its index.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: u64) -> usize {
        assert!(u < self.head.len() && v < self.head.len(), "arc endpoint out of range");
        let idx = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.head[u].push(idx);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(idx + 1);
        idx
    }

    /// Computes the maximum `s → t` flow (Dinic), consuming capacities.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(s != t, "source equals sink");
        assert!(s < self.node_count() && t < self.node_count(), "terminal out of range");
        let n = self.node_count();
        let mut flow = 0u64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &a in &self.head[u] {
                    let v = self.to[a];
                    if self.cap[a] > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow with per-node arc cursors.
            let mut cursor = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, u64::MAX, &level, &mut cursor);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(
        &mut self,
        u: usize,
        t: usize,
        limit: u64,
        level: &[usize],
        cursor: &mut [usize],
    ) -> u64 {
        if u == t {
            return limit;
        }
        while cursor[u] < self.head[u].len() {
            let a = self.head[u][cursor[u]];
            let v = self.to[a];
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[a]), level, cursor);
                if pushed > 0 {
                    self.cap[a] -= pushed;
                    self.cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            cursor[u] += 1;
        }
        0
    }

    /// Nodes reachable from `s` in the residual graph (call after
    /// [`max_flow`](Self::max_flow) to read off the minimum cut's source
    /// side).
    #[must_use]
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &a in &self.head[u] {
                let v = self.to[a];
                if self.cap[a] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 3, 3);
        net.add_arc(0, 2, 4);
        net.add_arc(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_respected() {
        // 0 -> 1 -> 2 with caps 10, 1.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 10);
        net.add_arc(1, 2, 1);
        assert_eq!(net.max_flow(0, 2), 1);
    }

    #[test]
    fn classic_augmenting_cross_edge() {
        // The textbook case where the cross edge must be "undone".
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_side_via_residual() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 100);
        net.add_arc(1, 2, 1); // the cut
        net.add_arc(2, 3, 100);
        let f = net.max_flow(0, 3);
        assert_eq!(f, 1);
        let side = net.residual_reachable(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn same_terminal_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(1, 1);
    }
}
