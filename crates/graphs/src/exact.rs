//! Exact maximum-clique search (Bron–Kerbosch with pivoting).
//!
//! Finding a maximum clique is NP-hard (the paper cites Håstad's
//! inapproximability \[13\]); this module exists to provide *ground truth on
//! small instances* for experiment E11 and for validating the heuristics,
//! not as a scalable algorithm. The implementation is the classic
//! Bron–Kerbosch recursion with the Tomita pivoting rule and runs
//! comfortably up to a few hundred nodes on the instance families used
//! here.

use crate::bitset::FixedBitSet;
use crate::graph::Graph;

/// Returns a maximum clique of `g` as a node set.
///
/// Exponential worst-case time; intended for `n ≲ 300` ground-truth runs.
/// The empty graph yields the empty set; otherwise the result is non-empty
/// (a single node is a clique).
///
/// # Examples
///
/// ```
/// use graphs::{GraphBuilder, exact};
///
/// let mut b = GraphBuilder::new(5);
/// b.add_clique(&[0, 1, 2]).add_edge(3, 4);
/// let clique = exact::maximum_clique(&b.build());
/// assert_eq!(clique.to_vec(), vec![0, 1, 2]);
/// ```
#[must_use]
pub fn maximum_clique(g: &Graph) -> FixedBitSet {
    let n = g.node_count();
    let rows: Vec<FixedBitSet> = match collect_rows(g) {
        Some(r) => r,
        None => return FixedBitSet::new(n),
    };
    let mut best = FixedBitSet::new(n);
    let mut current = FixedBitSet::new(n);
    let p = FixedBitSet::full(n);
    let x = FixedBitSet::new(n);
    bron_kerbosch(&rows, &mut current, p, x, &mut best);
    best
}

/// Size of a maximum clique (convenience wrapper over
/// [`maximum_clique`]).
#[must_use]
pub fn clique_number(g: &Graph) -> usize {
    maximum_clique(g).len()
}

fn collect_rows(g: &Graph) -> Option<Vec<FixedBitSet>> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    Some(
        (0..n)
            .map(|v| match g.row(v) {
                Some(r) => r.clone(),
                None => FixedBitSet::from_iter_with_capacity(n, g.neighbors(v).iter().copied()),
            })
            .collect(),
    )
}

fn bron_kerbosch(
    rows: &[FixedBitSet],
    current: &mut FixedBitSet,
    p: FixedBitSet,
    x: FixedBitSet,
    best: &mut FixedBitSet,
) {
    if p.is_empty() && x.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    // Bounding: even taking all of P cannot beat the incumbent.
    if current.len() + p.len() <= best.len() {
        return;
    }
    // Tomita pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| rows[u].intersection_count(&p))
        .expect("P ∪ X non-empty here");

    let mut candidates = p.clone();
    candidates.difference_with(&rows[pivot]);
    let mut p = p;
    let mut x = x;
    for v in candidates.iter() {
        let mut p_next = p.clone();
        p_next.intersect_with(&rows[v]);
        let mut x_next = x.clone();
        x_next.intersect_with(&rows[v]);
        current.insert(v);
        bron_kerbosch(rows, current, p_next, x_next, best);
        current.remove(v);
        // Classical BK bookkeeping: v moves from P to X for the remaining
        // candidates of this level.
        p.remove(v);
        x.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::planted_clique;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_empty_clique() {
        assert_eq!(maximum_clique(&Graph::empty(0)).len(), 0);
        assert_eq!(clique_number(&Graph::empty(5)), 1);
    }

    #[test]
    fn single_edges_give_pairs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        assert_eq!(clique_number(&b.build()), 2);
    }

    #[test]
    fn finds_planted_max_clique() {
        let mut rng = StdRng::seed_from_u64(31);
        let p = planted_clique(60, 12, 0.1, &mut rng);
        let found = maximum_clique(&p.graph);
        assert!(found.len() >= 12, "found {} < planted 12", found.len());
        // The found set must actually be a clique.
        for u in found.iter() {
            for v in found.iter() {
                if u < v {
                    assert!(p.graph.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn complete_graph_is_its_own_clique() {
        let g = Graph::complete(15);
        assert_eq!(clique_number(&g), 15);
    }

    #[test]
    fn cycle_of_length_five_has_clique_number_two() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(clique_number(&b.build()), 2);
    }

    #[test]
    fn works_without_bitset_rows() {
        let mut b = GraphBuilder::new(10);
        b.bitset_rows(false);
        b.add_clique(&[1, 4, 7, 9]);
        assert_eq!(clique_number(&b.build()), 4);
    }
}
