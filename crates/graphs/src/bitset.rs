//! A packed, fixed-capacity bit set.
//!
//! [`FixedBitSet`] is the workhorse of every density computation in this
//! workspace: adjacency rows, node subsets, and the `K_ε`/`T_ε` kernels of
//! the paper all reduce to word-parallel intersection counts over bit sets.
//!
//! The implementation is deliberately self-contained (no external bitset
//! crate) so the hot kernels — [`FixedBitSet::intersection_count`] in
//! particular — stay transparent and auditable.
//!
//! # Examples
//!
//! ```
//! use graphs::bitset::FixedBitSet;
//!
//! let mut a = FixedBitSet::new(128);
//! a.insert(3);
//! a.insert(64);
//! let mut b = FixedBitSet::new(128);
//! b.insert(64);
//! b.insert(100);
//! assert_eq!(a.intersection_count(&b), 1);
//! assert!(a.contains(3));
//! ```

use std::fmt;

const WORD_BITS: usize = 64;

/// A set of `usize` values drawn from `0..capacity`, stored one bit per
/// value.
///
/// All binary operations (`union_with`, `intersect_with`,
/// `intersection_count`, …) require both operands to have the same
/// capacity and panic otherwise; this catches cross-graph mixups early.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FixedBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl FixedBitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let n_words = capacity.div_ceil(WORD_BITS);
        Self { words: vec![0; n_words], capacity }
    }

    /// Creates a set containing every value in `0..capacity`.
    #[must_use]
    pub fn full(capacity: usize) -> Self {
        let mut set = Self::new(capacity);
        for (i, word) in set.words.iter_mut().enumerate() {
            let lo = i * WORD_BITS;
            if lo + WORD_BITS <= capacity {
                *word = u64::MAX;
            } else if lo < capacity {
                *word = (1u64 << (capacity - lo)) - 1;
            }
        }
        set
    }

    /// Builds a set from an iterator of members.
    ///
    /// # Panics
    ///
    /// Panics if any member is `>= capacity`.
    #[must_use]
    pub fn from_iter_with_capacity<I: IntoIterator<Item = usize>>(
        capacity: usize,
        members: I,
    ) -> Self {
        let mut set = Self::new(capacity);
        for m in members {
            set.insert(m);
        }
        set
    }

    /// The exclusive upper bound on storable values.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bit {value} out of capacity {}", self.capacity);
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let mask = 1u64 << b;
        let was_absent = self.words[w] & mask == 0;
        self.words[w] |= mask;
        was_absent
    }

    /// Removes `value`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bit {value} out of capacity {}", self.capacity);
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let mask = 1u64 << b;
        let was_present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was_present
    }

    /// Returns `true` if `value` is a member. Out-of-range values are simply
    /// not members (no panic), which lets callers probe safely.
    #[must_use]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members, keeping the capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    fn assert_same_capacity(&self, other: &Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// `|self ∪ other|` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn union_count(&self, other: &Self) -> usize {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a | b).count_ones() as usize).sum()
    }

    /// `|self \ other|` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn difference_count(&self, other: &Self) -> usize {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & !b).count_ones() as usize).sum()
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &Self) {
        self.assert_same_capacity(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &Self) {
        self.assert_same_capacity(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &Self) {
        self.assert_same_capacity(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if the sets share no member.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every member of `self` is a member of `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects members into a `Vec`, in increasing order.
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for FixedBitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Iterator over the members of a [`FixedBitSet`], produced by
/// [`FixedBitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a FixedBitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a FixedBitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = FixedBitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = FixedBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = FixedBitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        FixedBitSet::new(10).insert(10);
    }

    #[test]
    fn full_has_everything_and_only_that() {
        for cap in [0, 1, 63, 64, 65, 127, 128, 200] {
            let s = FixedBitSet::full(cap);
            assert_eq!(s.len(), cap, "capacity {cap}");
            assert_eq!(s.to_vec(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_algebra_counts() {
        let a = FixedBitSet::from_iter_with_capacity(200, [1, 2, 3, 100, 150]);
        let b = FixedBitSet::from_iter_with_capacity(200, [2, 3, 4, 150, 199]);
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(a.union_count(&b), 7);
        assert_eq!(a.difference_count(&b), 2);
        assert_eq!(b.difference_count(&a), 2);
    }

    #[test]
    fn in_place_ops_match_counts() {
        let a = FixedBitSet::from_iter_with_capacity(70, [0, 5, 64, 69]);
        let b = FixedBitSet::from_iter_with_capacity(70, [5, 6, 69]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), a.union_count(&b));
        assert_eq!(u.to_vec(), vec![0, 5, 6, 64, 69]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.len(), a.intersection_count(&b));
        assert_eq!(i.to_vec(), vec![5, 69]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.len(), a.difference_count(&b));
        assert_eq!(d.to_vec(), vec![0, 64]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = FixedBitSet::from_iter_with_capacity(100, [1, 2]);
        let b = FixedBitSet::from_iter_with_capacity(100, [1, 2, 3]);
        let c = FixedBitSet::from_iter_with_capacity(100, [50]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_order_and_min() {
        let s = FixedBitSet::from_iter_with_capacity(300, [299, 0, 64, 63, 128]);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 128, 299]);
        assert_eq!(s.min(), Some(0));
        assert_eq!(FixedBitSet::new(5).min(), None);
    }

    #[test]
    fn clear_resets() {
        let mut s = FixedBitSet::from_iter_with_capacity(64, [0, 1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mixed_capacity_panics() {
        let a = FixedBitSet::new(10);
        let b = FixedBitSet::new(20);
        let _ = a.intersection_count(&b);
    }

    #[test]
    fn extend_collects() {
        let mut s = FixedBitSet::new(10);
        s.extend([1usize, 3, 5]);
        assert_eq!(s.to_vec(), vec![1, 3, 5]);
    }
}
