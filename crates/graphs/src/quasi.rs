//! Greedy + local-search quasi-clique heuristic.
//!
//! Abello, Resende and Sudarsky \[1\] search for "quasi-cliques" — the
//! paper's near-cliques under another name — with a GRASP: randomized
//! greedy construction followed by local search. This module implements a
//! faithful, compact version of that scheme as the centralized heuristic
//! baseline of experiment E11:
//!
//! 1. **Construction** — grow a set from a (randomized) high-degree seed,
//!    repeatedly adding the node that keeps density highest, while the set
//!    stays `γ`-dense.
//! 2. **Local search** — hill-climb with single-node swaps
//!    (add / remove / exchange) that grow the set without dropping below
//!    the density floor.
//! 3. **Restarts** — keep the best result over `restarts` seeded attempts.

use rand::Rng;

use crate::bitset::FixedBitSet;
use crate::density;
use crate::graph::Graph;

/// Configuration for [`quasi_clique`].
#[derive(Clone, Debug)]
pub struct QuasiCliqueConfig {
    /// Density floor γ: the returned set is γ-dense, i.e. a
    /// `(1 − γ)`-near clique in the paper's convention.
    pub gamma: f64,
    /// Number of GRASP restarts.
    pub restarts: usize,
    /// Greedy candidate-list width (top-w candidates are sampled from).
    pub rcl_width: usize,
}

impl Default for QuasiCliqueConfig {
    fn default() -> Self {
        Self { gamma: 0.8, restarts: 8, rcl_width: 4 }
    }
}

/// Finds a large γ-dense set (a `(1 − γ)`-near clique) by GRASP.
///
/// Returns the largest set found over all restarts; ties are broken by
/// density. The result always satisfies the γ floor (singletons trivially
/// do, so the result is non-empty on non-empty graphs).
///
/// # Panics
///
/// Panics if `gamma ∉ [0, 1]` or `rcl_width == 0`.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, quasi};
/// use rand::SeedableRng;
///
/// let g = Graph::complete(12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let set = quasi::quasi_clique(&g, &quasi::QuasiCliqueConfig::default(), &mut rng);
/// assert_eq!(set.len(), 12);
/// ```
#[must_use]
pub fn quasi_clique<R: Rng + ?Sized>(
    g: &Graph,
    config: &QuasiCliqueConfig,
    rng: &mut R,
) -> FixedBitSet {
    assert!((0.0..=1.0).contains(&config.gamma), "gamma must be in [0, 1]");
    assert!(config.rcl_width >= 1, "rcl_width must be at least 1");
    let n = g.node_count();
    if n == 0 {
        return FixedBitSet::new(0);
    }
    let mut best = FixedBitSet::new(n);
    let mut best_density = 0.0;
    for _ in 0..config.restarts.max(1) {
        let mut set = construct(g, config, rng);
        local_search(g, config.gamma, &mut set);
        let d = density::density(g, &set);
        if set.len() > best.len() || (set.len() == best.len() && d > best_density) {
            best_density = d;
            best = set;
        }
    }
    best
}

/// Randomized greedy construction: seed from the restricted candidate list
/// of highest-degree nodes, then grow while γ-density is preserved.
fn construct<R: Rng + ?Sized>(g: &Graph, config: &QuasiCliqueConfig, rng: &mut R) -> FixedBitSet {
    let n = g.node_count();
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let width = config.rcl_width.min(n);
    let seed = by_degree[rng.gen_range(0..width)];

    let mut set = FixedBitSet::new(n);
    set.insert(seed);
    let mut internal_directed = 0usize; // directed internal edge count
    loop {
        // Candidate with the most neighbors inside the set, restricted list.
        let s = set.len();
        let mut candidates: Vec<(usize, usize)> =
            (0..n).filter(|&v| !set.contains(v)).map(|v| (g.degree_into(v, &set), v)).collect();
        if candidates.is_empty() {
            break;
        }
        candidates.sort_unstable_by_key(|&(d, _)| std::cmp::Reverse(d));
        let w = config.rcl_width.min(candidates.len());
        let (gain, v) = candidates[rng.gen_range(0..w)];
        // Density if v joins: internal pairs gain 2·gain directed edges.
        let new_internal = internal_directed + 2 * gain;
        let new_pairs = (s + 1) * s; // (s+1)·((s+1)−1)
        if new_pairs > 0 && (new_internal as f64) < config.gamma * new_pairs as f64 {
            break;
        }
        set.insert(v);
        internal_directed = new_internal;
    }
    set
}

/// Hill-climbing: try add moves first, then 1-swap (exchange) moves that
/// keep size but strictly raise density, enabling later adds. Stops at a
/// local optimum.
fn local_search(g: &Graph, gamma: f64, set: &mut FixedBitSet) {
    let n = g.node_count();
    loop {
        let mut improved = false;

        // Add moves.
        let s = set.len();
        let internal = density::directed_internal_edges(g, set);
        for v in 0..n {
            if set.contains(v) {
                continue;
            }
            let gain = g.degree_into(v, set);
            let new_internal = internal + 2 * gain;
            let new_pairs = (s + 1) * s;
            if new_pairs == 0 || new_internal as f64 >= gamma * new_pairs as f64 {
                set.insert(v);
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Exchange moves: remove the weakest member, add an outsider with
        // strictly more internal edges.
        if s >= 2 {
            let weakest = set.iter().min_by_key(|&v| g.degree_into(v, set)).expect("set non-empty");
            let weakest_deg = g.degree_into(weakest, set);
            let mut without = set.clone();
            without.remove(weakest);
            for v in 0..n {
                if set.contains(v) {
                    continue;
                }
                let deg = g.degree_into(v, &without);
                if deg > weakest_deg {
                    set.remove(weakest);
                    set.insert(v);
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted_clique, planted_near_clique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_gives_empty_set() {
        let mut rng = StdRng::seed_from_u64(0);
        let set = quasi_clique(&Graph::empty(0), &QuasiCliqueConfig::default(), &mut rng);
        assert!(set.is_empty());
    }

    #[test]
    fn complete_graph_takes_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = quasi_clique(&Graph::complete(10), &QuasiCliqueConfig::default(), &mut rng);
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn result_meets_density_floor() {
        let mut rng = StdRng::seed_from_u64(51);
        let p = planted_near_clique(150, 40, 0.1, 0.05, &mut rng);
        let config = QuasiCliqueConfig { gamma: 0.8, restarts: 6, rcl_width: 3 };
        let set = quasi_clique(&p.graph, &config, &mut rng);
        assert!(!set.is_empty());
        assert!(
            density::density(&p.graph, &set) >= config.gamma - 1e-9,
            "density {} below floor",
            density::density(&p.graph, &set)
        );
    }

    #[test]
    fn recovers_most_of_planted_clique() {
        let mut rng = StdRng::seed_from_u64(52);
        let p = planted_clique(120, 30, 0.03, &mut rng);
        let config = QuasiCliqueConfig { gamma: 0.9, restarts: 10, rcl_width: 3 };
        let set = quasi_clique(&p.graph, &config, &mut rng);
        assert!(p.recall(&set) > 0.7, "recall = {}", p.recall(&set));
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1]")]
    fn bad_gamma_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = QuasiCliqueConfig { gamma: 2.0, ..Default::default() };
        let _ = quasi_clique(&Graph::empty(1), &config, &mut rng);
    }
}
