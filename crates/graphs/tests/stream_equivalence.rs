//! Streamed ≡ materialized generator equivalence (the PR-10 contract).
//!
//! For the same seed, [`GnpStream`] / [`PlantedNearCliqueStream`] must
//! produce exactly the edge set of the materialized [`gnp`] /
//! [`planted_near_clique`] generators — bit for bit, so that a run built
//! from a stream is indistinguishable from a run built from the `Graph`.

#![recursion_limit = "256"]

use graphs::generators::{
    gnp, materialize, planted_near_clique, EdgeStream, GnpStream, PlantedNearCliqueStream,
};
use graphs::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edges_of(g: &Graph) -> Vec<(usize, usize)> {
    g.edges().collect()
}

fn drain(stream: &mut dyn EdgeStream) -> Vec<(usize, usize)> {
    stream.reset();
    std::iter::from_fn(|| stream.next_edge()).collect()
}

proptest! {
    #[test]
    fn gnp_stream_equals_materialized(
        params in (0usize..200, 0usize..=1000, any::<u64>()),
    ) {
        let (n, p_millis, seed) = params;
        let p = p_millis as f64 / 1000.0;
        let g = gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let mut s = GnpStream::new(n, p, seed);
        prop_assert_eq!(edges_of(&g), drain(&mut s));
        // And materializing the stream rebuilds the same graph.
        let m = materialize(&mut s);
        prop_assert_eq!(g.node_count(), m.node_count());
        prop_assert_eq!(edges_of(&g), edges_of(&m));
    }

    #[test]
    fn planted_stream_equals_materialized(
        params in ((0usize..120, 0usize..=1000), (0usize..=1000, 0usize..=400), any::<u64>()),
    ) {
        let ((n, k_millis), (eps_millis, bg_millis), seed) = params;
        let k = n * k_millis / 1000; // any 0..=n
        let epsilon = eps_millis as f64 / 1000.0;
        let background_p = bg_millis as f64 / 1000.0;
        let planted =
            planted_near_clique(n, k, epsilon, background_p, &mut StdRng::seed_from_u64(seed));
        let mut s = PlantedNearCliqueStream::new(n, k, epsilon, background_p, seed);
        prop_assert_eq!(&planted.dense_set, s.dense_set());
        prop_assert_eq!(edges_of(&planted.graph), drain(&mut s));
    }
}

#[test]
fn gnp_stream_matches_at_fixed_scale() {
    // One larger deterministic spot check beyond proptest's small cases.
    let (n, p, seed) = (3000, 0.004, 42);
    let g = gnp(n, p, &mut StdRng::seed_from_u64(seed));
    let mut s = GnpStream::new(n, p, seed);
    assert_eq!(edges_of(&g), drain(&mut s));
    assert!(g.edge_count() > 0);
}
