//! The "neighbors' neighbors" algorithm of §3, in the LOCAL model.
//!
//! Each node tells all its neighbors about all its neighbors; after one
//! round every node knows the topology to distance 2 and computes the
//! largest clique it belongs to (exactly — by Bron–Kerbosch over its
//! closed neighborhood). Overlapping proposals are resolved in favor of
//! the larger clique, ties toward the smaller minimum member ID.
//!
//! The paper *rejects* this algorithm for two reasons this module makes
//! measurable:
//!
//! * **communication** — the round-1 message carries a whole neighbor
//!   list, `Θ(Δ log n)` bits (LOCAL, not CONGEST); the metered
//!   `max_message_bits` shows the blow-up in experiment E10, and
//! * **computation** — each node solves maximum clique on its
//!   neighborhood, which is NP-hard; the exponential local work limits
//!   runs to small `n` (also the point).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use congest::{
    Context, Message, Metrics, Mode, Port, Protocol, Session, Termination, ID_BITS, TAG_BITS,
};
use graphs::{exact, FixedBitSet, Graph, GraphBuilder};

/// Messages of the neighbors'-neighbors algorithm. `NeighborList` and
/// `Proposal` carry entire ID lists — this is what makes the algorithm
/// LOCAL-only, and the meter shows it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NnMsg {
    /// Round 1: my full neighbor list.
    NeighborList(Vec<u64>),
    /// Round 2: the largest clique I belong to (member IDs).
    Proposal(Vec<u64>),
    /// Round 3: I reject your proposal (I belong to a better one).
    Abort,
    /// Round 4: my proposal survived; members adopt `leader` as label.
    Confirm {
        /// The proposing node (the label).
        leader: u64,
    },
}

impl Message for NnMsg {
    fn bit_size(&self) -> usize {
        let payload = match self {
            NnMsg::NeighborList(ids) | NnMsg::Proposal(ids) => ids.len() * ID_BITS,
            NnMsg::Abort => 1,
            NnMsg::Confirm { .. } => ID_BITS,
        };
        TAG_BITS + payload
    }
}

/// Per-node state.
#[derive(Debug)]
pub struct NeighborsNeighbors {
    phase: u8,
    /// Edges among my neighbors, learned in round 1.
    neighbor_adjacency: BTreeMap<u64, BTreeSet<u64>>,
    my_clique: Vec<u64>,
    /// Proposals I belong to: `(size, leader, port or MAX for self)`.
    my_proposals: Vec<(usize, u64, Port)>,
    aborted: bool,
    output: Option<u64>,
}

impl NeighborsNeighbors {
    /// Creates the per-node state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            phase: 0,
            neighbor_adjacency: BTreeMap::new(),
            my_clique: Vec::new(),
            my_proposals: Vec::new(),
            aborted: false,
            output: None,
        }
    }

    /// Largest clique containing me within my closed neighborhood, as IDs.
    fn best_local_clique(&self, ctx: &Context<'_, NnMsg>) -> Vec<u64> {
        let mut ids: Vec<u64> = vec![ctx.id()];
        ids.extend((0..ctx.degree()).map(|p| ctx.neighbor_id(p)));
        ids.sort_unstable();
        ids.dedup();
        let index_of: BTreeMap<u64, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut b = GraphBuilder::new(ids.len());
        let me = index_of[&ctx.id()];
        for p in 0..ctx.degree() {
            b.add_edge(me, index_of[&ctx.neighbor_id(p)]);
        }
        for (u, adj) in &self.neighbor_adjacency {
            for v in adj {
                if let (Some(&iu), Some(&iv)) = (index_of.get(u), index_of.get(v)) {
                    if iu != iv {
                        b.add_edge(iu, iv);
                    }
                }
            }
        }
        let local = b.build();
        // Restrict to cliques containing me: run BK on my neighborhood
        // subgraph plus me. Simplest exact approach: take the max clique of
        // the subgraph induced on my closed neighborhood that contains me —
        // equivalently max clique of G[Γ(me)] plus me.
        let neighborhood: Vec<usize> =
            (0..ctx.degree()).map(|p| index_of[&ctx.neighbor_id(p)]).collect();
        let set = FixedBitSet::from_iter_with_capacity(ids.len(), neighborhood);
        let (sub, mapping) = local.induced_subgraph(&set);
        let clique = exact::maximum_clique(&sub);
        let mut result: Vec<u64> = clique.iter().map(|i| ids[mapping[i]]).collect();
        result.push(ctx.id());
        result.sort_unstable();
        result
    }
}

impl Default for NeighborsNeighbors {
    fn default() -> Self {
        Self::new()
    }
}

/// Proposal ordering: larger size wins; ties toward smaller minimum ID.
fn proposal_beats(a: (usize, u64), b: (usize, u64)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl Protocol for NeighborsNeighbors {
    type Msg = NnMsg;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &mut Context<'_, NnMsg>) {
        let list: Vec<u64> = (0..ctx.degree()).map(|p| ctx.neighbor_id(p)).collect();
        ctx.broadcast(NnMsg::NeighborList(list));
    }

    fn step(&mut self, ctx: &mut Context<'_, NnMsg>, inbox: &[(Port, NnMsg)]) {
        self.phase += 1;
        match self.phase {
            1 => {
                for (port, msg) in inbox {
                    match msg {
                        NnMsg::NeighborList(ids) => {
                            let u = ctx.neighbor_id(*port);
                            self.neighbor_adjacency.insert(u, ids.iter().copied().collect());
                        }
                        other => panic!("unexpected in NN round 1: {other:?}"),
                    }
                }
                self.my_clique = self.best_local_clique(ctx);
                self.my_proposals.push((self.my_clique.len(), ctx.id(), usize::MAX));
                ctx.broadcast(NnMsg::Proposal(self.my_clique.clone()));
            }
            2 => {
                for (port, msg) in inbox {
                    match msg {
                        NnMsg::Proposal(ids) => {
                            if ids.binary_search(&ctx.id()).is_ok() {
                                self.my_proposals.push((ids.len(), ctx.neighbor_id(*port), *port));
                            }
                        }
                        other => panic!("unexpected in NN round 2: {other:?}"),
                    }
                }
                // Vote: keep the best proposal I belong to, abort the rest.
                let min_id = |leader: u64| {
                    // Tie-break key: the proposing clique's min member is
                    // approximated by its leader ID — proposals are cliques
                    // containing the leader, and the paper leaves the exact
                    // tie-break open ("say, the smallest ID").
                    leader
                };
                let &(bs, bl, _) = self
                    .my_proposals
                    .iter()
                    .max_by(|&&(s1, l1, _), &&(s2, l2, _)| {
                        if proposal_beats((s1, min_id(l1)), (s2, min_id(l2))) {
                            std::cmp::Ordering::Greater
                        } else if proposal_beats((s2, min_id(l2)), (s1, min_id(l1))) {
                            std::cmp::Ordering::Less
                        } else {
                            std::cmp::Ordering::Equal
                        }
                    })
                    .expect("own proposal always present");
                for &(size, leader, port) in &self.my_proposals.clone() {
                    if (size, leader) != (bs, bl) && port != usize::MAX {
                        ctx.send(port, NnMsg::Abort);
                    }
                }
                if (bs, bl) != (self.my_clique.len(), ctx.id()) {
                    self.aborted = true; // my own proposal lost at my seat
                }
            }
            3 => {
                for (_port, msg) in inbox {
                    match msg {
                        NnMsg::Abort => self.aborted = true,
                        other => panic!("unexpected in NN round 3: {other:?}"),
                    }
                }
                if !self.aborted {
                    self.output = Some(ctx.id());
                    ctx.broadcast(NnMsg::Confirm { leader: ctx.id() });
                }
            }
            4 => {
                for (_port, msg) in inbox {
                    match msg {
                        NnMsg::Confirm { leader } => {
                            if self.my_proposals.iter().any(|&(_, l, _)| l == *leader)
                                && self.output.is_none()
                            {
                                self.output = Some(*leader);
                            }
                        }
                        other => panic!("unexpected in NN round 4: {other:?}"),
                    }
                }
            }
            _ => debug_assert!(inbox.is_empty(), "NN is a 4-round protocol"),
        }
    }

    fn is_idle(&self) -> bool {
        // The protocol is a fixed 4-round script; stay non-idle until it
        // has played out so isolated nodes also reach their verdicts.
        self.phase >= 4
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

/// Result of one neighbors'-neighbors run.
#[derive(Clone, Debug)]
pub struct NeighborsRun {
    /// Per-node labels.
    pub labels: Vec<Option<u64>>,
    /// Metrics — note `max_message_bits` scales with Δ.
    pub metrics: Metrics,
}

impl NeighborsRun {
    /// The largest confirmed clique, if any.
    #[must_use]
    pub fn largest_set(&self) -> Option<FixedBitSet> {
        let n = self.labels.len();
        let mut by_label: BTreeMap<u64, FixedBitSet> = BTreeMap::new();
        for (v, l) in self.labels.iter().enumerate() {
            if let Some(label) = l {
                by_label.entry(*label).or_insert_with(|| FixedBitSet::new(n)).insert(v);
            }
        }
        by_label.into_values().max_by_key(FixedBitSet::len)
    }
}

/// Runs the neighbors'-neighbors algorithm (LOCAL model).
///
/// Local computation is exponential in the neighborhood size; keep `n`
/// small (the experiments use `n ≤ 150`).
#[must_use]
pub fn run_neighbors_neighbors(g: &Graph, seed: u64) -> NeighborsRun {
    let (labels, report) =
        Session::on(g).seed(seed).mode(Mode::Local).run_with(|_| NeighborsNeighbors::new());
    debug_assert_eq!(report.termination, Termination::Quiescent);
    NeighborsRun { labels, metrics: report.metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_exact_clique_in_clique_plus_fringe() {
        let mut b = GraphBuilder::new(12);
        b.add_clique(&(0..8).collect::<Vec<_>>());
        b.add_edge(8, 9).add_edge(10, 11).add_edge(0, 8);
        let g = b.build();
        let run = run_neighbors_neighbors(&g, 3);
        let set = run.largest_set().expect("clique found");
        assert_eq!(set.len(), 8);
        assert_eq!(set.to_vec(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn message_width_scales_with_degree() {
        let small = Graph::complete(6);
        let big = Graph::complete(24);
        let rs = run_neighbors_neighbors(&small, 1);
        let rb = run_neighbors_neighbors(&big, 1);
        assert!(
            rb.metrics.max_message_bits > 3 * rs.metrics.max_message_bits,
            "width must grow with Δ: {} vs {}",
            rb.metrics.max_message_bits,
            rs.metrics.max_message_bits
        );
    }

    #[test]
    fn constant_round_count() {
        let g = Graph::complete(10);
        let run = run_neighbors_neighbors(&g, 2);
        assert!(run.metrics.rounds <= 6);
    }

    #[test]
    fn disjoint_cliques_both_confirmed() {
        let mut b = GraphBuilder::new(14);
        b.add_clique(&(0..7).collect::<Vec<_>>());
        b.add_clique(&(7..14).collect::<Vec<_>>());
        let g = b.build();
        let run = run_neighbors_neighbors(&g, 5);
        let labeled = run.labels.iter().filter(|l| l.is_some()).count();
        assert_eq!(labeled, 14, "both cliques fully labeled");
        assert_ne!(run.labels[0], run.labels[7]);
    }

    #[test]
    fn triangle_with_pendant() {
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[0, 1, 2]).add_edge(2, 3);
        let run = run_neighbors_neighbors(&b.build(), 7);
        let set = run.largest_set().unwrap();
        assert_eq!(set.to_vec(), vec![0, 1, 2]);
    }
}
