//! The "shingles algorithm" of §3, as a CONGEST protocol.
//!
//! Based on the shingles idea of Broder et al. \[6\]: every node draws a
//! random identifier, the label of a node is the minimum identifier in its
//! closed neighborhood, and nodes sharing a label form a candidate set.
//! The candidate's density is computed by its leader (the namesake node —
//! every member is the leader or adjacent to it, so reporting takes one
//! round) and only candidates of sufficient size and density survive.
//!
//! The algorithm runs in exactly five synchronous rounds with
//! `O(log n)`-bit messages — and Claim 1 of the paper proves it *cannot*
//! find a large near-clique on the Figure 1 family. Experiment E4
//! reproduces that failure against `DistNearClique`'s success.
//!
//! Candidate sets are disjoint by construction (each node has one label),
//! so the conflict-resolution step of the paper's sketch is vacuous here;
//! the paper's description allows overlapping variants, ours is the
//! disjoint one.

use congest::{bits_for_count, Context, Message, Metrics, Port, Protocol, Session, Termination};
use graphs::{FixedBitSet, Graph};
use rand::Rng;

/// Shingles protocol messages. All `O(log n)` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShingleMsg {
    /// Round 1: my random shingle.
    Rand(u64),
    /// Round 2: my chosen label (minimum shingle seen).
    Label(u64),
    /// Round 3: member report to the leader: my degree into the set.
    Report {
        /// The label being reported for.
        label: u64,
        /// `|Γ(me) ∩ set|`.
        in_degree: u32,
    },
    /// Round 4: leader's verdict for its set.
    Verdict {
        /// The label the verdict concerns.
        label: u64,
        /// Whether the set met the size and density thresholds.
        survive: bool,
    },
}

impl Message for ShingleMsg {
    fn bit_size(&self) -> usize {
        let payload = match self {
            ShingleMsg::Rand(_) | ShingleMsg::Label(_) => 64,
            ShingleMsg::Report { .. } => 64 + 32,
            ShingleMsg::Verdict { .. } => 64 + 1,
        };
        congest::TAG_BITS + payload
    }
}

/// Survival thresholds for candidate sets.
#[derive(Clone, Copy, Debug)]
pub struct ShinglesConfig {
    /// Minimum acceptable candidate size.
    pub min_size: usize,
    /// Minimum acceptable pair density (Definition 1 convention), i.e.
    /// `1 − ε` for an ε-near-clique target.
    pub min_density: f64,
}

impl Default for ShinglesConfig {
    fn default() -> Self {
        Self { min_size: 2, min_density: 0.5 }
    }
}

/// Per-node state of the shingles protocol.
#[derive(Debug)]
pub struct Shingles {
    config: ShinglesConfig,
    phase: u8,
    my_rand: u64,
    /// `(shingle, port)` pairs; port `usize::MAX` = self.
    rands: Vec<(u64, Port)>,
    label: u64,
    label_port: Option<Port>, // port toward the leader (None = self)
    neighbor_labels: Vec<(Port, u64)>,
    // Leader state.
    reports: Vec<u32>,
    own_in_degree: u32,
    output: Option<u64>,
}

impl Shingles {
    /// Creates the per-node state.
    #[must_use]
    pub fn new(config: ShinglesConfig) -> Self {
        Self {
            config,
            phase: 0,
            my_rand: 0,
            rands: Vec::new(),
            label: u64::MAX,
            label_port: None,
            neighbor_labels: Vec::new(),
            reports: Vec::new(),
            own_in_degree: 0,
            output: None,
        }
    }

    fn is_leader(&self) -> bool {
        self.label == self.my_rand
    }
}

impl Protocol for Shingles {
    type Msg = ShingleMsg;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &mut Context<'_, ShingleMsg>) {
        // The paper draws from a space large enough that collisions are
        // negligible; 64 bits gives collision probability ≈ n²/2⁶⁴.
        self.my_rand = ctx.rng().gen();
        self.rands.push((self.my_rand, usize::MAX));
        ctx.broadcast(ShingleMsg::Rand(self.my_rand));
    }

    fn step(&mut self, ctx: &mut Context<'_, ShingleMsg>, inbox: &[(Port, ShingleMsg)]) {
        self.phase += 1;
        match self.phase {
            1 => {
                for (port, msg) in inbox {
                    match msg {
                        ShingleMsg::Rand(r) => self.rands.push((*r, *port)),
                        other => panic!("unexpected in shingles round 1: {other:?}"),
                    }
                }
                let &(min, port) =
                    self.rands.iter().min_by_key(|&&(r, _)| r).expect("own shingle always present");
                self.label = min;
                self.label_port = (port != usize::MAX).then_some(port);
                ctx.broadcast(ShingleMsg::Label(self.label));
            }
            2 => {
                for (port, msg) in inbox {
                    match msg {
                        ShingleMsg::Label(l) => self.neighbor_labels.push((*port, *l)),
                        other => panic!("unexpected in shingles round 2: {other:?}"),
                    }
                }
                self.own_in_degree =
                    self.neighbor_labels.iter().filter(|&&(_, l)| l == self.label).count() as u32;
                if let Some(port) = self.label_port {
                    ctx.send(
                        port,
                        ShingleMsg::Report { label: self.label, in_degree: self.own_in_degree },
                    );
                }
            }
            3 => {
                for (_port, msg) in inbox {
                    match msg {
                        ShingleMsg::Report { label, in_degree } => {
                            debug_assert_eq!(*label, self.my_rand, "reports go to the namesake");
                            self.reports.push(*in_degree);
                        }
                        other => panic!("unexpected in shingles round 3: {other:?}"),
                    }
                }
                // The namesake leads its set even when it is not a member
                // itself (its own label may be smaller — the paper's Case 2
                // situation where vmin ∈ I₁ leads C₁ ∪ {vmin}).
                let is_member = self.is_leader();
                if is_member || !self.reports.is_empty() {
                    let size = self.reports.len() + usize::from(is_member);
                    let directed: u64 = self.reports.iter().map(|&d| u64::from(d)).sum::<u64>()
                        + if is_member { u64::from(self.own_in_degree) } else { 0 };
                    let density = if size <= 1 {
                        1.0
                    } else {
                        directed as f64 / (size as f64 * (size as f64 - 1.0))
                    };
                    let survive =
                        size >= self.config.min_size && density >= self.config.min_density - 1e-9;
                    if survive && is_member {
                        self.output = Some(self.my_rand);
                    }
                    ctx.broadcast(ShingleMsg::Verdict { label: self.my_rand, survive });
                }
            }
            4 => {
                for (_port, msg) in inbox {
                    match msg {
                        ShingleMsg::Verdict { label, survive } => {
                            if *label == self.label && *survive {
                                self.output = Some(self.label);
                            }
                        }
                        other => panic!("unexpected in shingles round 4: {other:?}"),
                    }
                }
            }
            _ => debug_assert!(inbox.is_empty(), "shingles is a 4-round protocol"),
        }
    }

    fn is_idle(&self) -> bool {
        // The protocol is a fixed 4-round script; stay non-idle until it
        // has played out so isolated nodes also reach their verdicts.
        self.phase >= 4
    }

    fn output(&self) -> Option<u64> {
        self.output
    }
}

/// Result of one shingles run.
#[derive(Clone, Debug)]
pub struct ShinglesRun {
    /// Per-node labels (`None` = ⊥).
    pub labels: Vec<Option<u64>>,
    /// Simulator metrics (constant rounds, `O(log n)` bits).
    pub metrics: Metrics,
}

impl ShinglesRun {
    /// The largest surviving candidate set, if any.
    #[must_use]
    pub fn largest_set(&self) -> Option<FixedBitSet> {
        let n = self.labels.len();
        let mut by_label: std::collections::BTreeMap<u64, FixedBitSet> =
            std::collections::BTreeMap::new();
        for (v, l) in self.labels.iter().enumerate() {
            if let Some(label) = l {
                by_label.entry(*label).or_insert_with(|| FixedBitSet::new(n)).insert(v);
            }
        }
        by_label.into_values().max_by_key(FixedBitSet::len)
    }
}

/// Runs the shingles algorithm on `g`.
#[must_use]
pub fn run_shingles(g: &Graph, config: ShinglesConfig, seed: u64) -> ShinglesRun {
    let (labels, report) = Session::on(g).seed(seed).run_with(|_| Shingles::new(config));
    debug_assert_eq!(report.termination, Termination::Quiescent);
    ShinglesRun { labels, metrics: report.metrics }
}

/// Sanity helper mirroring the paper's counting: expected message width of
/// the protocol in "`log n` units".
#[must_use]
pub fn width_in_log_units(metrics: &Metrics, n: usize) -> f64 {
    metrics.max_message_bits as f64 / bits_for_count(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::shingles_counterexample;
    use graphs::{density, GraphBuilder};

    #[test]
    fn clique_survives_with_global_min_inside() {
        // On a clique, every node has the same closed neighborhood, so all
        // nodes share one label and the set is the whole clique.
        let g = Graph::complete(12);
        let run = run_shingles(&g, ShinglesConfig { min_size: 2, min_density: 0.9 }, 3);
        let set = run.largest_set().expect("clique must survive");
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn empty_graph_all_singletons_filtered() {
        let g = Graph::empty(10);
        let run = run_shingles(&g, ShinglesConfig { min_size: 2, min_density: 0.5 }, 5);
        assert!(run.labels.iter().all(Option::is_none));
        // With min_size 1 singletons survive (density 1 by convention).
        let run2 = run_shingles(&g, ShinglesConfig { min_size: 1, min_density: 0.5 }, 5);
        assert!(run2.labels.iter().all(Option::is_some));
    }

    #[test]
    fn constant_rounds_and_log_messages() {
        let g = Graph::complete(60);
        let run = run_shingles(&g, ShinglesConfig::default(), 7);
        assert!(run.metrics.rounds <= 6, "shingles is constant-round");
        assert!(run.metrics.max_message_bits <= 8 + 64 + 32);
    }

    #[test]
    fn surviving_sets_meet_thresholds() {
        let mut b = GraphBuilder::new(30);
        b.add_clique(&(0..10).collect::<Vec<_>>());
        b.extend_edges([(10, 11), (12, 13)]);
        let g = b.build();
        let config = ShinglesConfig { min_size: 3, min_density: 0.8 };
        let run = run_shingles(&g, config, 11);
        let n = g.node_count();
        let mut by_label: std::collections::BTreeMap<u64, FixedBitSet> = Default::default();
        for (v, l) in run.labels.iter().enumerate() {
            if let Some(label) = l {
                by_label.entry(*label).or_insert_with(|| FixedBitSet::new(n)).insert(v);
            }
        }
        for (label, set) in by_label {
            assert!(set.len() >= config.min_size, "label {label} too small");
            assert!(
                density::density(&g, &set) >= config.min_density - 1e-9,
                "label {label} too sparse"
            );
        }
    }

    #[test]
    fn counterexample_defeats_shingles_for_most_seeds() {
        // Claim 1: on the Figure 1 graph, the shingles algorithm cannot
        // output an ε-near clique of (1−ε)δn nodes for small ε. We check
        // the *conclusion*: over many seeds, it never outputs a
        // sufficiently large and dense set.
        let n = 200;
        let delta = 0.5;
        let s = shingles_counterexample(n, delta);
        let eps = 0.1; // below min{(1−δ)/(1+δ), 1/9} ≈ 0.111
        let need = ((1.0 - eps) * delta * n as f64).ceil() as usize;
        for seed in 0..20 {
            let run = run_shingles(
                &s.graph,
                ShinglesConfig { min_size: 2, min_density: 1.0 - eps },
                seed,
            );
            if let Some(set) = run.largest_set() {
                assert!(
                    set.len() < need,
                    "seed {seed}: shingles output {} ≥ {need} nodes, contradicting Claim 1",
                    set.len()
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Graph::complete(20);
        let a = run_shingles(&g, ShinglesConfig::default(), 9);
        let b = run_shingles(&g, ShinglesConfig::default(), 9);
        assert_eq!(a.labels, b.labels);
    }
}
