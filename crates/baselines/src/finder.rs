//! One trait over every near-clique finder, for like-for-like comparison.
//!
//! Experiment E11 scores all algorithms — the paper's `DistNearClique`,
//! the §3 strawmen, and the centralized comparators it cites — on the
//! same instances with the same interface: *give me your best dense set*.

use graphs::{exact, goldberg, kcore, peel, quasi, FixedBitSet, Graph};
use nearclique::{run_near_clique, NearCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::neighbors::run_neighbors_neighbors;
use crate::shingles::{run_shingles, ShinglesConfig};

/// A near-clique discovery algorithm under test.
pub trait NearCliqueFinder {
    /// Human-readable algorithm name (table row label).
    fn name(&self) -> &'static str;

    /// Returns the algorithm's best set on `g` (empty set = nothing
    /// found). `seed` drives any randomness.
    fn find(&self, g: &Graph, seed: u64) -> FixedBitSet;
}

/// The paper's algorithm, via [`nearclique::run_near_clique`].
#[derive(Clone, Debug)]
pub struct DistNearCliqueFinder {
    /// Parameters for the run.
    pub params: NearCliqueParams,
}

impl NearCliqueFinder for DistNearCliqueFinder {
    fn name(&self) -> &'static str {
        "dist-near-clique"
    }

    fn find(&self, g: &Graph, seed: u64) -> FixedBitSet {
        run_near_clique(g, &self.params, seed)
            .largest_set()
            .unwrap_or_else(|| FixedBitSet::new(g.node_count()))
    }
}

/// The §3 shingles strawman.
#[derive(Clone, Debug)]
pub struct ShinglesFinder {
    /// Survival thresholds.
    pub config: ShinglesConfig,
}

impl NearCliqueFinder for ShinglesFinder {
    fn name(&self) -> &'static str {
        "shingles"
    }

    fn find(&self, g: &Graph, seed: u64) -> FixedBitSet {
        run_shingles(g, self.config, seed)
            .largest_set()
            .unwrap_or_else(|| FixedBitSet::new(g.node_count()))
    }
}

/// The §3 neighbors'-neighbors strawman (LOCAL model; small `n` only).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeighborsFinder;

impl NearCliqueFinder for NeighborsFinder {
    fn name(&self) -> &'static str {
        "neighbors-neighbors"
    }

    fn find(&self, g: &Graph, seed: u64) -> FixedBitSet {
        run_neighbors_neighbors(g, seed)
            .largest_set()
            .unwrap_or_else(|| FixedBitSet::new(g.node_count()))
    }
}

/// Charikar greedy peeling with a size floor ([`graphs::peel`]).
#[derive(Clone, Copy, Debug)]
pub struct PeelFinder {
    /// Minimum acceptable set size.
    pub min_size: usize,
}

impl NearCliqueFinder for PeelFinder {
    fn name(&self) -> &'static str {
        "greedy-peel"
    }

    fn find(&self, g: &Graph, _seed: u64) -> FixedBitSet {
        if g.node_count() == 0 {
            return FixedBitSet::new(0);
        }
        peel::densest_at_least_k(g, self.min_size.clamp(1, g.node_count())).set
    }
}

/// Abello-style quasi-clique GRASP ([`graphs::quasi`]).
#[derive(Clone, Debug)]
pub struct QuasiFinder {
    /// GRASP configuration.
    pub config: quasi::QuasiCliqueConfig,
}

impl NearCliqueFinder for QuasiFinder {
    fn name(&self) -> &'static str {
        "quasi-clique"
    }

    fn find(&self, g: &Graph, seed: u64) -> FixedBitSet {
        let mut rng = StdRng::seed_from_u64(seed);
        quasi::quasi_clique(g, &self.config, &mut rng)
    }
}

/// The innermost k-core ([`graphs::kcore`]): the cheapest dense-set
/// heuristic, `O(m)` time.
#[derive(Clone, Copy, Debug, Default)]
pub struct KCoreFinder;

impl NearCliqueFinder for KCoreFinder {
    fn name(&self) -> &'static str {
        "innermost-kcore"
    }

    fn find(&self, g: &Graph, _seed: u64) -> FixedBitSet {
        kcore::innermost_core(g)
    }
}

/// Exact densest subgraph (max average degree) via Goldberg's flow
/// construction ([`graphs::goldberg`]) — the exact counterpart of
/// [`PeelFinder`].
#[derive(Clone, Copy, Debug, Default)]
pub struct GoldbergFinder;

impl NearCliqueFinder for GoldbergFinder {
    fn name(&self) -> &'static str {
        "exact-densest"
    }

    fn find(&self, g: &Graph, _seed: u64) -> FixedBitSet {
        goldberg::densest_subgraph_exact(g).set
    }
}

/// Exact maximum clique (ground truth; exponential, small `n` only).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactFinder;

impl NearCliqueFinder for ExactFinder {
    fn name(&self) -> &'static str {
        "exact-max-clique"
    }

    fn find(&self, g: &Graph, _seed: u64) -> FixedBitSet {
        exact::maximum_clique(g)
    }
}

/// Convenience: scores of one finder on one instance.
#[derive(Clone, Debug)]
pub struct FinderScore {
    /// Algorithm name.
    pub name: &'static str,
    /// Size of the returned set.
    pub size: usize,
    /// Pair density of the returned set.
    pub density: f64,
}

/// Runs a collection of finders on one graph and reports their scores.
pub fn score_all(g: &Graph, finders: &[&dyn NearCliqueFinder], seed: u64) -> Vec<FinderScore> {
    finders
        .iter()
        .map(|f| {
            let set = f.find(g, seed);
            FinderScore {
                name: f.name(),
                size: set.len(),
                density: graphs::density::density(g, &set),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::planted_clique;

    #[test]
    fn all_finders_run_on_a_planted_instance() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = planted_clique(60, 15, 0.05, &mut rng);
        let dist = DistNearCliqueFinder {
            params: NearCliqueParams::new(0.25, 0.1).unwrap().with_lambda(2),
        };
        let shingles = ShinglesFinder { config: ShinglesConfig::default() };
        let peel = PeelFinder { min_size: 10 };
        let quasi = QuasiFinder { config: quasi::QuasiCliqueConfig::default() };
        let exact = ExactFinder;
        let finders: Vec<&dyn NearCliqueFinder> = vec![&dist, &shingles, &peel, &quasi, &exact];
        let scores = score_all(&p.graph, &finders, 3);
        assert_eq!(scores.len(), 5);
        let exact_score = scores.iter().find(|s| s.name == "exact-max-clique").unwrap();
        assert!(exact_score.size >= 15);
        assert_eq!(exact_score.density, 1.0);
        for s in &scores {
            assert!(s.size <= 60);
        }
    }

    #[test]
    fn peel_finder_clamps_min_size() {
        let g = Graph::complete(5);
        let f = PeelFinder { min_size: 100 };
        let set = f.find(&g, 0);
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn empty_graph_is_survivable_by_everyone() {
        let g = Graph::empty(4);
        let dist = DistNearCliqueFinder { params: NearCliqueParams::new(0.2, 0.3).unwrap() };
        let shingles = ShinglesFinder { config: ShinglesConfig { min_size: 2, min_density: 0.5 } };
        let exact = ExactFinder;
        let finders: Vec<&dyn NearCliqueFinder> = vec![&dist, &shingles, &exact];
        for s in score_all(&g, &finders, 1) {
            assert!(s.size <= 4);
        }
    }
}
