//! Comparators for `DistNearClique`.
//!
//! The paper motivates its algorithm by eliminating two simple approaches
//! (§3) and situating itself against centralized dense-subgraph work. This
//! crate makes those comparisons executable:
//!
//! * [`shingles`] — the shingles algorithm (random minimum labels +
//!   density filtering), a constant-round CONGEST protocol that Claim 1
//!   proves inadequate on the Figure 1 family.
//! * [`neighbors`] — the neighbors'-neighbors algorithm: correct, but
//!   `Θ(Δ log n)`-bit messages (LOCAL model) and NP-hard local work.
//! * [`finder`] — the [`finder::NearCliqueFinder`] trait unifying those
//!   with the centralized comparators from [`graphs`] (greedy peeling,
//!   quasi-clique GRASP, exact maximum clique) and with
//!   [`nearclique::run_near_clique`] itself, so experiment E11 can score
//!   them all identically.
//!
//! # Example
//!
//! ```
//! use baselines::shingles::{run_shingles, ShinglesConfig};
//! use graphs::Graph;
//!
//! let g = Graph::complete(10);
//! let run = run_shingles(&g, ShinglesConfig { min_size: 2, min_density: 0.9 }, 7);
//! assert_eq!(run.largest_set().unwrap().len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod finder;
pub mod neighbors;
pub mod shingles;

pub use finder::{
    score_all, DistNearCliqueFinder, ExactFinder, FinderScore, GoldbergFinder, KCoreFinder,
    NearCliqueFinder, NeighborsFinder, PeelFinder, QuasiFinder, ShinglesFinder,
};
pub use neighbors::{run_neighbors_neighbors, NeighborsRun};
pub use shingles::{run_shingles, ShinglesConfig, ShinglesRun};
