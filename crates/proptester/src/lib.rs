//! A ρ-clique property tester in the dense-graph query model.
//!
//! The paper's methodology (§1, §6) adapts the Goldreich–Goldwasser–Ron
//! property-testing framework \[10\] to the distributed setting. This crate
//! implements the query-model side of that story so experiment E12 can
//! compare the two resource regimes directly:
//!
//! * property testers make few *queries* ("is `{u,v}` an edge?") but may
//!   probe topologically distant pairs — implemented by [`CountingOracle`];
//! * the distributed algorithm does much work in parallel but only over
//!   local links — implemented by the `nearclique` crate.
//!
//! [`RhoCliqueTester`] follows the canonical GGR shape (Goldreich &
//! Trevisan's canonical form: query a random induced subgraph, then
//! decide by exhaustive computation on the sampled bits), instantiated
//! with the same `T_ε(X) = K_ε(K_{2ε²}(X)) ∩ K_{2ε²}(X)` operator the
//! paper builds `DistNearClique` from. [`approximate_find`] is the
//! `O(n)`-query "approximate find" variant \[10\] mentioned in the related
//! work: once the tester accepts, a full scan materializes the near-clique.
//!
//! # Example
//!
//! ```
//! use proptester::{CountingOracle, RhoCliqueTester, TesterParams};
//! use rand::SeedableRng;
//!
//! let g = graphs::Graph::complete(400);
//! let oracle = CountingOracle::new(&g);
//! let tester = RhoCliqueTester::new(TesterParams {
//!     rho: 0.8,
//!     epsilon: 0.2,
//!     sample_size: 8,
//!     eval_size: 60,
//! });
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! assert!(tester.test(&oracle, &mut rng));
//! assert!(oracle.queries() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::cell::Cell;

use graphs::{FixedBitSet, Graph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Integer membership threshold `ceil((1 − ε)·base)`, kept identical to
/// the `nearclique` crate's convention.
fn k_threshold(base: usize, epsilon: f64) -> usize {
    ((1.0 - epsilon) * base as f64 - 1e-9).ceil().max(0.0) as usize
}

/// An adjacency oracle in the dense-graph model, with query counting.
///
/// Every [`has_edge`](CountingOracle::has_edge) costs one query. The
/// counter is interior-mutable so testers can take `&CountingOracle`.
#[derive(Debug)]
pub struct CountingOracle<'a> {
    graph: &'a Graph,
    queries: Cell<u64>,
}

impl<'a> CountingOracle<'a> {
    /// Wraps a graph as an oracle.
    #[must_use]
    pub fn new(graph: &'a Graph) -> Self {
        Self { graph, queries: Cell::new(0) }
    }

    /// Number of nodes of the underlying graph (known to the tester, as
    /// in the standard model).
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Adjacency query; increments the counter.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.queries.set(self.queries.get() + 1);
        self.graph.has_edge(u, v)
    }

    /// Queries spent so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Resets the counter (between experiment repetitions).
    pub fn reset(&self) {
        self.queries.set(0);
    }
}

/// Parameters of the ρ-clique tester.
#[derive(Clone, Copy, Debug)]
pub struct TesterParams {
    /// The clique-fraction parameter: the property is "has a ρn-clique".
    pub rho: f64,
    /// The proximity parameter ε.
    pub epsilon: f64,
    /// Size of the enumeration sample `S` (all `2^|S|` subsets are tried;
    /// the paper keeps this `poly(1/ε)` — cap ≈ 16).
    pub sample_size: usize,
    /// Size of the evaluation sample `W` (membership estimates; GGR take
    /// `Θ̃(1/ε²)`).
    pub eval_size: usize,
}

impl TesterParams {
    fn validate(&self) {
        assert!(self.rho > 0.0 && self.rho <= 1.0, "rho must be in (0, 1]");
        assert!(self.epsilon > 0.0 && self.epsilon < 0.5, "epsilon must be in (0, 0.5)");
        assert!(self.sample_size >= 1 && self.sample_size <= 16, "sample_size in 1..=16");
        assert!(self.eval_size >= 1, "eval_size must be positive");
    }
}

/// The GGR-style ρ-clique tester built on the paper's `T` operator.
#[derive(Clone, Copy, Debug)]
pub struct RhoCliqueTester {
    params: TesterParams,
}

impl RhoCliqueTester {
    /// Creates a tester.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (see [`TesterParams`] fields).
    #[must_use]
    pub fn new(params: TesterParams) -> Self {
        params.validate();
        Self { params }
    }

    /// One-sided-style test: `true` = "evidence of a large near-clique".
    ///
    /// Queries all pairs within `S ∪ W` (the canonical-form probe,
    /// `O((|S| + |W|)²)` queries), then for every non-empty `X ⊆ S`
    /// estimates `|T_ε(X)|` from the `W`-sample and accepts if some
    /// estimate reaches `(1 − 2ε)·ρ·n`.
    pub fn test<R: Rng + ?Sized>(&self, oracle: &CountingOracle<'_>, rng: &mut R) -> bool {
        self.best_subset(oracle, rng).is_some()
    }

    /// The accepting subset `X` and its estimated `|T_ε(X)|`, if any.
    pub fn best_subset<R: Rng + ?Sized>(
        &self,
        oracle: &CountingOracle<'_>,
        rng: &mut R,
    ) -> Option<(Vec<usize>, f64)> {
        let p = self.params;
        let n = oracle.n();
        if n == 0 {
            return None;
        }
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.shuffle(rng);
        let s_size = p.sample_size.min(n);
        let sample: Vec<usize> = nodes[..s_size].to_vec();
        let eval: Vec<usize> = nodes
            .iter()
            .copied()
            .skip(s_size)
            .take(p.eval_size.min(n.saturating_sub(s_size)))
            .collect();
        if eval.is_empty() {
            return None;
        }

        // Probe the full induced bipartite-and-internal pattern on S ∪ W.
        let w = eval.len();
        let s = sample.len();
        // adjacency of eval × sample and eval × eval.
        let mut es = vec![false; w * s];
        for (i, &u) in eval.iter().enumerate() {
            for (j, &x) in sample.iter().enumerate() {
                es[i * s + j] = oracle.has_edge(u, x);
            }
        }
        let mut ee = vec![false; w * w];
        for i in 0..w {
            for j in (i + 1)..w {
                let a = oracle.has_edge(eval[i], eval[j]);
                ee[i * w + j] = a;
                ee[j * w + i] = a;
            }
        }

        let inner_eps = 2.0 * p.epsilon * p.epsilon;
        let target = (1.0 - 2.0 * p.epsilon) * p.rho * n as f64;
        let mut best: Option<(u32, f64)> = None;
        for x_mask in 1u32..(1u32 << s) {
            let x_size = x_mask.count_ones() as usize;
            // W ∩ K_{2ε²}(X), estimated exactly on the sample.
            let mut k_w: Vec<usize> = Vec::new();
            for i in 0..w {
                let mut cnt = 0usize;
                for j in 0..s {
                    if x_mask & (1 << j) != 0 && es[i * s + j] {
                        cnt += 1;
                    }
                }
                if cnt >= k_threshold(x_size, inner_eps) {
                    k_w.push(i);
                }
            }
            let est_k = n as f64 * k_w.len() as f64 / w as f64;
            // W ∩ T_ε(X): members of K_w adjacent to (1 − ε) of K_w.
            let t_count = k_w
                .iter()
                .filter(|&&i| {
                    let cnt = k_w.iter().filter(|&&j| j != i && ee[i * w + j]).count();
                    // Scale the threshold to the sample estimate of |K|.
                    let base = k_w.len().saturating_sub(1);
                    let _ = est_k;
                    cnt >= k_threshold(base, p.epsilon)
                })
                .count();
            let est_t = n as f64 * t_count as f64 / w as f64;
            if est_t >= target && best.is_none_or(|(_, b)| est_t > b) {
                best = Some((x_mask, est_t));
            }
        }
        best.map(|(mask, est)| {
            let x: Vec<usize> = sample
                .iter()
                .enumerate()
                .filter(|(j, _)| mask & (1 << j) != 0)
                .map(|(_, &v)| v)
                .collect();
            (x, est)
        })
    }
}

/// The "approximate find" companion \[10\]: given an accepting subset `X`,
/// materialize `T_ε(X)` with a full scan — `O(n·|X| + n·|K|)` queries,
/// linear in `n` for constant ε.
pub fn approximate_find(oracle: &CountingOracle<'_>, x: &[usize], epsilon: f64) -> FixedBitSet {
    let n = oracle.n();
    let inner_eps = 2.0 * epsilon * epsilon;
    let x_set: FixedBitSet = FixedBitSet::from_iter_with_capacity(n, x.iter().copied());
    // K_{2ε²}(X) by direct queries.
    let mut k_set = FixedBitSet::new(n);
    for v in 0..n {
        let mut cnt = 0usize;
        for &m in x {
            if m != v && oracle.has_edge(v, m) {
                cnt += 1;
            }
        }
        let base = x_set.len() - usize::from(x_set.contains(v));
        if cnt >= k_threshold(base, inner_eps) {
            k_set.insert(v);
        }
    }
    // T_ε(X) by direct queries against K.
    let members: Vec<usize> = k_set.to_vec();
    let mut t_set = FixedBitSet::new(n);
    for &v in &members {
        let mut cnt = 0usize;
        for &u in &members {
            if u != v && oracle.has_edge(v, u) {
                cnt += 1;
            }
        }
        if cnt >= k_threshold(members.len() - 1, epsilon) {
            t_set.insert(v);
        }
    }
    t_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{gnp, planted_near_clique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tester(rho: f64, eps: f64) -> RhoCliqueTester {
        RhoCliqueTester::new(TesterParams { rho, epsilon: eps, sample_size: 8, eval_size: 80 })
    }

    #[test]
    fn accepts_complete_graph() {
        let g = graphs::Graph::complete(300);
        let oracle = CountingOracle::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(tester(0.9, 0.2).test(&oracle, &mut rng));
    }

    #[test]
    fn rejects_sparse_random_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp(300, 0.05, &mut rng);
        let oracle = CountingOracle::new(&g);
        let mut accepts = 0;
        for seed in 0..10 {
            let mut r = StdRng::seed_from_u64(seed);
            if tester(0.5, 0.2).test(&oracle, &mut r) {
                accepts += 1;
            }
        }
        assert!(accepts <= 2, "sparse graph accepted {accepts}/10 times");
    }

    #[test]
    fn accepts_planted_near_clique_most_of_the_time() {
        let mut rng = StdRng::seed_from_u64(3);
        // ε³-near clique of half the nodes (ε = 0.25 → ε³ ≈ 0.016).
        let p = planted_near_clique(400, 200, 0.016, 0.02, &mut rng);
        let oracle = CountingOracle::new(&p.graph);
        let mut accepts = 0;
        for seed in 0..10 {
            let mut r = StdRng::seed_from_u64(seed * 7 + 1);
            if tester(0.5, 0.25).test(&oracle, &mut r) {
                accepts += 1;
            }
        }
        assert!(accepts >= 6, "planted instance accepted only {accepts}/10 times");
    }

    #[test]
    fn query_count_is_sublinear_in_n2() {
        let g = graphs::Graph::complete(500);
        let oracle = CountingOracle::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = tester(0.8, 0.2).test(&oracle, &mut rng);
        let q = oracle.queries();
        // (s + w)² with s = 8, w = 80: well under n²/4.
        assert!(q < (500 * 500 / 4) as u64, "too many queries: {q}");
        assert!(q > 0);
        oracle.reset();
        assert_eq!(oracle.queries(), 0);
    }

    #[test]
    fn find_returns_dense_set_on_planted_instance() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = planted_near_clique(300, 150, 0.016, 0.02, &mut rng);
        let oracle = CountingOracle::new(&p.graph);
        let mut r = StdRng::seed_from_u64(11);
        if let Some((x, _)) = tester(0.5, 0.25).best_subset(&oracle, &mut r) {
            let t = approximate_find(&oracle, &x, 0.25);
            assert!(t.len() >= 100, "found only {}", t.len());
            let d = graphs::density::density(&p.graph, &t);
            assert!(d > 0.8, "density {d}");
        } else {
            panic!("tester rejected a planted instance with this seed");
        }
    }

    #[test]
    fn empty_oracle_rejects() {
        let g = graphs::Graph::empty(0);
        let oracle = CountingOracle::new(&g);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!tester(0.5, 0.2).test(&oracle, &mut rng));
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn bad_rho_panics() {
        let _ = RhoCliqueTester::new(TesterParams {
            rho: 0.0,
            epsilon: 0.2,
            sample_size: 4,
            eval_size: 10,
        });
    }
}
