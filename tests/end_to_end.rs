//! Cross-crate integration tests: planted recovery, wrappers, invariants.

use near_clique_suite::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn planted_near_clique_recovered_end_to_end() {
    let epsilon: f64 = 0.25;
    let mut r = rng(1);
    let planted = generators::planted_near_clique(300, 150, epsilon.powi(3), 0.02, &mut r);
    let params = NearCliqueParams::for_expected_sample(epsilon, 8.0, 300).unwrap();

    // Constant success probability: over several seeds, most must succeed.
    let mut successes = 0;
    for seed in 0..8 {
        let run = run_near_clique(&planted.graph, &params, seed);
        assert_eq!(run.termination, Termination::Quiescent);
        if let Some(found) = run.largest_set() {
            if planted.recall(&found) > 0.8
                && density::density(&planted.graph, &found) > 1.0 - 2.0 * epsilon
            {
                successes += 1;
            }
        }
    }
    assert!(successes >= 5, "only {successes}/8 seeds recovered the planted set");
}

#[test]
fn distributed_equals_reference_on_community_graph() {
    let mut r = rng(2);
    let cg = generators::overlapping_communities(150, 2, 40, 8, 0.9, 0.02, &mut r);
    let params = NearCliqueParams::for_expected_sample(0.25, 7.0, 150).unwrap().with_lambda(2);
    for seed in 0..4 {
        let run = run_near_clique(&cg.graph, &params, seed);
        let reference = reference_run(&cg.graph, &run.ids, &params, &run.plan);
        assert_eq!(run.labels, reference.labels, "seed {seed}");
    }
}

#[test]
fn lemma_5_3_holds_on_every_family() {
    let params = NearCliqueParams::for_expected_sample(0.3, 8.0, 200).unwrap();
    let graphs: Vec<Graph> = vec![
        generators::gnp(200, 0.15, &mut rng(3)),
        generators::planted_clique(200, 60, 0.05, &mut rng(4)).graph,
        generators::shingles_counterexample(200, 0.4).graph,
        generators::caveman(8, 25, 0.2, &mut rng(5)).graph,
        Graph::complete(200),
        Graph::empty(200),
    ];
    for (i, g) in graphs.iter().enumerate() {
        for seed in 0..3 {
            let run = run_near_clique(g, &params, seed * 11 + 1);
            check_labels(g, &run.labels, params.epsilon)
                .unwrap_or_else(|e| panic!("family {i}, seed {seed}: {e}"));
        }
    }
}

#[test]
fn time_bound_wrapper_aborts_consistently() {
    let mut r = rng(6);
    let planted = generators::planted_clique(150, 60, 0.03, &mut r);
    let params = NearCliqueParams::for_expected_sample(0.25, 7.0, 150).unwrap();
    // Abort at every possible budget: labels must be None or a full,
    // consistent labeling — never a partial inconsistent one. With the
    // staged protocol, labels only appear in the final phase.
    for budget in [1u64, 3, 7, 15, 31, 63] {
        let run = run_near_clique_with(
            &planted.graph,
            &params,
            9,
            RunOptions { max_rounds: budget, ..RunOptions::default() },
        );
        match run.termination {
            Termination::RoundLimit => {
                assert!(
                    run.labels.iter().all(Option::is_none),
                    "budget {budget}: labels must not appear before the winner phase"
                );
            }
            Termination::Quiescent => {
                // Small budgets can still suffice; then outputs must be
                // fully valid.
                check_labels(&planted.graph, &run.labels, params.epsilon)
                    .unwrap_or_else(|e| panic!("budget {budget}: {e}"));
            }
            Termination::Degraded { lost } => {
                panic!("budget {budget}: fault-free run reported Degraded (lost {lost})")
            }
        }
    }
}

#[test]
fn boosting_strictly_helps_on_borderline_instance() {
    let trials = 20;
    let n = 200;
    let base = NearCliqueParams::for_expected_sample(0.25, 4.0, n).unwrap();
    let boosted = base.clone().with_lambda(4);
    let mut single = 0;
    let mut multi = 0;
    for t in 0..trials {
        let mut r = rng(700 + t);
        let planted = generators::planted_near_clique(n, 50, 0.0156, 0.02, &mut r);
        let ok = |run: &NearCliqueRun| {
            run.largest_set().map(|s| planted.recall(&s) > 0.7).unwrap_or(false)
        };
        if ok(&run_near_clique(&planted.graph, &base, t)) {
            single += 1;
        }
        if ok(&run_near_clique(&planted.graph, &boosted, t)) {
            multi += 1;
        }
    }
    assert!(
        multi >= single,
        "boosting must not hurt: single {single}, boosted {multi} of {trials}"
    );
    assert!(multi >= trials / 2, "boosted success too low: {multi}/{trials}");
}

#[test]
fn parallel_and_sequential_runs_agree_cross_crate() {
    let mut r = rng(8);
    let planted = generators::planted_near_clique(200, 80, 0.0156, 0.03, &mut r);
    let params = NearCliqueParams::for_expected_sample(0.25, 8.0, 200).unwrap();
    let seq = run_near_clique_with(&planted.graph, &params, 13, RunOptions::threaded(1));
    let par = run_near_clique_with(&planted.graph, &params, 13, RunOptions::threaded(4));
    assert_eq!(seq.labels, par.labels);
    assert_eq!(seq.metrics.rounds, par.metrics.rounds);
    assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
}

#[test]
fn congest_budget_never_exceeded_anywhere() {
    let budget = nearclique::msg::max_message_bits();
    let families: Vec<Graph> = vec![
        generators::gnp(150, 0.2, &mut rng(9)),
        generators::shingles_counterexample(150, 0.5).graph,
        Graph::complete(60),
    ];
    let params = NearCliqueParams::for_expected_sample(0.25, 8.0, 150).unwrap().with_lambda(2);
    for g in &families {
        for seed in 0..3 {
            let run = run_near_clique(g, &params, seed);
            assert!(
                run.metrics.max_message_bits <= budget,
                "{} bits > budget {budget}",
                run.metrics.max_message_bits
            );
        }
    }
}
