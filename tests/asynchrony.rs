//! The §2 asynchrony reduction, tested on real protocols of the paper:
//! the shingles algorithm runs unchanged over the asynchronous engine
//! under synchronizer α — selected purely by [`Engine::Async`] on the
//! unified [`Session`] surface — and produces the exact synchronous
//! outputs, with identical payload-side metrics; the staged
//! `DistNearClique` completes under α via a derived `PhasePlan` (§4.1).
//!
//! This suite also pins the scheduling subsystem's two compatibility
//! contracts: `DelayModel::Uniform` is bit-identical to the engine's
//! original fixed draw (golden ledger below), and the payload ledger is
//! invariant across all four delay models.

use baselines::shingles::{Shingles, ShinglesConfig};
use congest::{
    ChurnModel, Context, DelayModel, Engine, FaultModel, Message, Port, Protocol, RunLimits,
    Session, SyncModel,
};
use graphs::{generators, Graph, GraphBuilder};
use near_clique_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn uniform(max_delay: u64) -> Engine {
    // The back-compat contracts below (golden ledger included) pin the
    // *reference* synchronizer; BatchedAlpha has its own grid +
    // property suites in `crates/core/tests/`. `FaultModel::None` is
    // the explicit fault-plane row of the golden ledger: a fault-free
    // engine must not perturb a single RNG draw (the None sampler
    // advances no stream), so the pre-fault-plane numbers — virtual
    // time included — must reproduce exactly.
    Engine::Async {
        delay: DelayModel::Uniform { max_delay },
        sync: SyncModel::Alpha,
        fault: FaultModel::None,
        churn: ChurnModel::None,
    }
}

#[test]
fn shingles_is_asynchrony_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let planted = generators::planted_clique(60, 20, 0.08, &mut rng);
    let config = ShinglesConfig { min_size: 3, min_density: 0.8 };

    for seed in 0..5u64 {
        let (sync_out, sync_report) = Session::on(&planted.graph)
            .seed(seed)
            .limits(RunLimits::rounds(8))
            .run_with(|_| Shingles::new(config));

        for max_delay in [1u64, 13, 64] {
            let (async_out, report) = Session::on(&planted.graph)
                .seed(seed)
                .engine(uniform(max_delay))
                .limits(RunLimits::rounds(8))
                .run_with(|_| Shingles::new(config));
            assert_eq!(
                async_out, sync_out,
                "seed {seed}, max_delay {max_delay}: asynchrony changed the output"
            );
            // The payload ledger is engine-independent ...
            assert_eq!(report.metrics.messages, sync_report.metrics.messages);
            assert_eq!(report.metrics.total_bits, sync_report.metrics.total_bits);
            // ... and the synchronizer pays on top: control dominates.
            assert!(report.overhead.control_messages >= report.metrics.messages);
        }
    }
}

#[test]
fn async_virtual_time_scales_with_delay() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let g = generators::gnp(40, 0.2, &mut rng);
    let config = ShinglesConfig::default();
    let run = |max_delay| {
        Session::on(&g)
            .seed(1)
            .engine(uniform(max_delay))
            .limits(RunLimits::rounds(8))
            .run_with(|_| Shingles::new(config))
            .1
            .overhead
            .virtual_time
    };
    let fast = run(1);
    let slow = run(32);
    assert!(slow > 2 * fast, "virtual time must grow with link delay: {fast} vs {slow}");
}

// ---------------------------------------------------------------------
// Back-compat and cross-model contracts of the scheduling subsystem.
// ---------------------------------------------------------------------

fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(i, i + 1);
    }
    b.build()
}

/// The five workload families of the equivalence suite (same generator
/// seeds as `crates/core/tests/engine_equivalence.rs`).
fn workloads() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(71);
    vec![
        ("planted", generators::planted_near_clique(140, 60, 0.015, 0.04, &mut rng).graph),
        ("gnp", generators::gnp(120, 0.08, &mut rng)),
        ("star", star(80)),
        ("path", path(80)),
        ("counterexample", generators::shingles_counterexample(120, 0.5).graph),
    ]
}

#[derive(Clone, Debug)]
struct Word(#[allow(dead_code)] u64);
impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Flood: the source announces; nodes record the round they first heard
/// it and forward once.
struct Flood {
    source: bool,
    heard_at: Option<u64>,
}
impl Protocol for Flood {
    type Msg = Word;
    type Output = Option<u64>;
    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        if self.source {
            self.heard_at = Some(0);
            ctx.broadcast(Word(ctx.id()));
        }
    }
    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(ctx.round());
            ctx.broadcast(Word(ctx.id()));
        }
    }
    fn is_idle(&self) -> bool {
        true
    }
    fn output(&self) -> Option<u64> {
        self.heard_at
    }
}

fn flood_factory(e: &congest::Endpoint) -> Flood {
    Flood { source: e.index == 0, heard_at: None }
}

fn output_hash(out: &[Option<u64>]) -> u64 {
    let mut h = 0u64;
    for o in out {
        h = h
            .rotate_left(9)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(o.map_or(u64::MAX, |r| r));
    }
    h
}

/// One frozen pre-subsystem ledger entry (captured from the engine at
/// the commit *before* `DelayModel` existed, seed 17, 24-pulse budget).
struct Golden {
    output_hash: u64,
    messages: u64,
    total_bits: u64,
    control_messages: u64,
    control_bits: u64,
    virtual_time: u64,
}

/// Back-compat regression: `DelayModel::Uniform { max_delay }` must be
/// **bit-identical** to the pre-subsystem fixed uniform draw — outputs,
/// payload ledger, and the full `SyncOverhead` (whose `virtual_time` is
/// the delay-stream-sensitive field) — at `max_delay ∈ {1, 7, 31}` on
/// all five workload families. The expected values are golden numbers
/// captured from the engine before the refactor.
#[test]
fn uniform_model_reproduces_the_pre_subsystem_ledger() {
    #[rustfmt::skip]
    let golden: Vec<(&str, u64, Golden)> = vec![
        ("planted", 1, Golden { output_hash: 0xb9bb94244a2cbd75, messages: 4150, total_bits: 265600, control_messages: 103750, control_bits: 4316000, virtual_time: 32 }),
        ("planted", 7, Golden { output_hash: 0xb9bb94244a2cbd75, messages: 4150, total_bits: 265600, control_messages: 103750, control_bits: 4316000, virtual_time: 218 }),
        ("planted", 31, Golden { output_hash: 0xb9bb94244a2cbd75, messages: 4150, total_bits: 265600, control_messages: 103750, control_bits: 4316000, virtual_time: 946 }),
        ("gnp", 1, Golden { output_hash: 0x681bdec981992878, messages: 1168, total_bits: 74752, control_messages: 29200, control_bits: 1214720, virtual_time: 34 }),
        ("gnp", 7, Golden { output_hash: 0x681bdec981992878, messages: 1168, total_bits: 74752, control_messages: 29200, control_bits: 1214720, virtual_time: 224 }),
        ("gnp", 31, Golden { output_hash: 0x681bdec981992878, messages: 1168, total_bits: 74752, control_messages: 29200, control_bits: 1214720, virtual_time: 956 }),
        ("star", 1, Golden { output_hash: 0x2804b3cb53d86027, messages: 158, total_bits: 10112, control_messages: 3950, control_bits: 164320, virtual_time: 28 }),
        ("star", 7, Golden { output_hash: 0x2804b3cb53d86027, messages: 158, total_bits: 10112, control_messages: 3950, control_bits: 164320, virtual_time: 191 }),
        ("star", 31, Golden { output_hash: 0x2804b3cb53d86027, messages: 158, total_bits: 10112, control_messages: 3950, control_bits: 164320, virtual_time: 809 }),
        ("path", 1, Golden { output_hash: 0x3331daedf613cc78, messages: 47, total_bits: 3008, control_messages: 3839, control_bits: 155440, virtual_time: 72 }),
        ("path", 7, Golden { output_hash: 0x3331daedf613cc78, messages: 47, total_bits: 3008, control_messages: 3839, control_bits: 155440, virtual_time: 322 }),
        ("path", 31, Golden { output_hash: 0x3331daedf613cc78, messages: 47, total_bits: 3008, control_messages: 3839, control_bits: 155440, virtual_time: 1296 }),
        ("counterexample", 1, Golden { output_hash: 0x4cafa969f6fab1d1, messages: 7140, total_bits: 456960, control_messages: 178500, control_bits: 7425600, virtual_time: 32 }),
        ("counterexample", 7, Golden { output_hash: 0x4cafa969f6fab1d1, messages: 7140, total_bits: 456960, control_messages: 178500, control_bits: 7425600, virtual_time: 223 }),
        ("counterexample", 31, Golden { output_hash: 0x4cafa969f6fab1d1, messages: 7140, total_bits: 456960, control_messages: 178500, control_bits: 7425600, virtual_time: 973 }),
    ];

    let graphs = workloads();
    for (name, max_delay, expect) in golden {
        let (_, g) = graphs.iter().find(|(n, _)| *n == name).expect("workload exists");
        let (out, report) = Session::on(g)
            .seed(17)
            .engine(uniform(max_delay))
            .limits(RunLimits::rounds(24))
            .run_with(flood_factory);
        assert_eq!(
            output_hash(&out),
            expect.output_hash,
            "{name}, max_delay {max_delay}: outputs changed vs the pre-subsystem engine"
        );
        assert_eq!(report.metrics.messages, expect.messages, "{name}, {max_delay}");
        assert_eq!(report.metrics.total_bits, expect.total_bits, "{name}, {max_delay}");
        assert_eq!(
            report.overhead.control_messages, expect.control_messages,
            "{name}, {max_delay}"
        );
        assert_eq!(report.overhead.control_bits, expect.control_bits, "{name}, {max_delay}");
        assert_eq!(
            report.overhead.virtual_time, expect.virtual_time,
            "{name}, max_delay {max_delay}: the uniform delay stream drifted"
        );
        // The `FaultModel::None` row of the ledger: a fault-free fault
        // plane drops nothing, retransmits nothing, loses nothing.
        assert_eq!(report.overhead.retransmissions, 0, "{name}, {max_delay}");
        assert_eq!(report.overhead.dropped_messages, 0, "{name}, {max_delay}");
    }
}

/// Cross-model invariance: for the same seed and budget, the payload
/// `Metrics` of a flood run are identical across all four `DelayModel`s
/// **and both `SyncModel`s** — scheduling reorders *delivery*, never
/// what the protocol pays — while virtual time (the one timing-sensitive
/// observable) does vary across delay models.
#[test]
fn payload_ledger_is_invariant_across_delay_models() {
    for (name, g) in workloads() {
        let mut ledgers = Vec::new();
        let mut virtual_times = Vec::new();
        for delay in [
            DelayModel::Uniform { max_delay: 6 },
            DelayModel::PerLink { max_delay: 6 },
            DelayModel::HeavyTailed { max_delay: 6 },
            DelayModel::Adversarial { max_delay: 6 },
        ] {
            for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
                let (out, report) = Session::on(&g)
                    .seed(23)
                    .engine(Engine::Async {
                        delay,
                        sync,
                        fault: FaultModel::None,
                        churn: ChurnModel::None,
                    })
                    .limits(RunLimits::rounds(24))
                    .run_with(flood_factory);
                ledgers.push((out, report.metrics.clone()));
                virtual_times.push(report.overhead.virtual_time);
            }
        }
        for pair in ledgers.windows(2) {
            assert_eq!(pair[0], pair[1], "{name}: outputs or payload ledger vary across models");
        }
        // The models genuinely schedule differently (star/path included:
        // adversarial fixes half the ports at the bound).
        virtual_times.dedup();
        assert!(virtual_times.len() > 1, "{name}: all models produced identical virtual time");
    }
}

/// End-to-end: the paper's own staged protocol under both
/// synchronizers, through the public `run_near_clique_with` entry point
/// (the plan is derived internally per §4.1), equals the default
/// flat-engine run — and the batched control plane undercuts α's.
#[test]
fn dist_near_clique_completes_under_alpha_via_run_options() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let planted = generators::planted_near_clique(120, 50, 0.015, 0.03, &mut rng);
    let params = NearCliqueParams::for_expected_sample(0.25, 6.0, 120).unwrap();

    let sync = run_near_clique(&planted.graph, &params, 13);
    let mut control = Vec::new();
    for model in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        let alpha = run_near_clique_with(
            &planted.graph,
            &params,
            13,
            RunOptions::with_engine(Engine::Async {
                delay: DelayModel::Adversarial { max_delay: 9 },
                sync: model,
                fault: FaultModel::None,
                churn: ChurnModel::None,
            }),
        );
        assert_eq!(alpha.termination, Termination::Quiescent, "{model:?}");
        assert_eq!(alpha.labels, sync.labels, "{model:?}");
        assert_eq!(alpha.metrics, sync.metrics, "{model:?}");
        assert_eq!(alpha.phase_trace, sync.phase_trace, "{model:?}");
        control.push(alpha.overhead.control_messages);
    }
    assert!(
        control[1] * 2 <= control[0],
        "batched Safe waves must at least halve α's control traffic: {control:?}"
    );
}
