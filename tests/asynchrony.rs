//! The §2 asynchrony reduction, tested on a real protocol of the paper:
//! the shingles algorithm runs unchanged over the asynchronous executor
//! under synchronizer α and produces the exact synchronous outputs.

use baselines::shingles::{Shingles, ShinglesConfig};
use congest::{run_synchronized, AsyncConfig, NetworkBuilder, RunLimits};
use graphs::generators;
use rand::SeedableRng;

#[test]
fn shingles_is_asynchrony_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let planted = generators::planted_clique(60, 20, 0.08, &mut rng);
    let config = ShinglesConfig { min_size: 3, min_density: 0.8 };

    for seed in 0..5u64 {
        let mut sync_net =
            NetworkBuilder::new().seed(seed).build_with(&planted.graph, |_| Shingles::new(config));
        sync_net.run(RunLimits::rounds(8));
        let sync_out = sync_net.outputs();

        for max_delay in [1u64, 13, 64] {
            let (async_out, report) = run_synchronized(
                &planted.graph,
                AsyncConfig { seed, max_delay, pulse_budget: 8 },
                |_| Shingles::new(config),
            );
            assert_eq!(
                async_out, sync_out,
                "seed {seed}, max_delay {max_delay}: asynchrony changed the output"
            );
            // The synchronizer pays: control messages dominate.
            assert!(report.control_messages >= report.payload_messages);
        }
    }
}

#[test]
fn async_virtual_time_scales_with_delay() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let g = generators::gnp(40, 0.2, &mut rng);
    let config = ShinglesConfig::default();
    let run = |max_delay| {
        run_synchronized(&g, AsyncConfig { seed: 1, max_delay, pulse_budget: 8 }, |_| {
            Shingles::new(config)
        })
        .1
        .virtual_time
    };
    let fast = run(1);
    let slow = run(32);
    assert!(slow > 2 * fast, "virtual time must grow with link delay: {fast} vs {slow}");
}
