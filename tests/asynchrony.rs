//! The §2 asynchrony reduction, tested on a real protocol of the paper:
//! the shingles algorithm runs unchanged over the asynchronous engine
//! under synchronizer α — selected purely by [`Engine::Async`] on the
//! unified [`Session`] surface — and produces the exact synchronous
//! outputs, with identical payload-side metrics.

use baselines::shingles::{Shingles, ShinglesConfig};
use congest::{Engine, RunLimits, Session};
use graphs::generators;
use rand::SeedableRng;

#[test]
fn shingles_is_asynchrony_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let planted = generators::planted_clique(60, 20, 0.08, &mut rng);
    let config = ShinglesConfig { min_size: 3, min_density: 0.8 };

    for seed in 0..5u64 {
        let (sync_out, sync_report) = Session::on(&planted.graph)
            .seed(seed)
            .limits(RunLimits::rounds(8))
            .run_with(|_| Shingles::new(config));

        for max_delay in [1u64, 13, 64] {
            let (async_out, report) = Session::on(&planted.graph)
                .seed(seed)
                .engine(Engine::Async { max_delay })
                .limits(RunLimits::rounds(8))
                .run_with(|_| Shingles::new(config));
            assert_eq!(
                async_out, sync_out,
                "seed {seed}, max_delay {max_delay}: asynchrony changed the output"
            );
            // The payload ledger is engine-independent ...
            assert_eq!(report.metrics.messages, sync_report.metrics.messages);
            assert_eq!(report.metrics.total_bits, sync_report.metrics.total_bits);
            // ... and the synchronizer pays on top: control dominates.
            assert!(report.overhead.control_messages >= report.metrics.messages);
        }
    }
}

#[test]
fn async_virtual_time_scales_with_delay() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let g = generators::gnp(40, 0.2, &mut rng);
    let config = ShinglesConfig::default();
    let run = |max_delay| {
        Session::on(&g)
            .seed(1)
            .engine(Engine::Async { max_delay })
            .limits(RunLimits::rounds(8))
            .run_with(|_| Shingles::new(config))
            .1
            .overhead
            .virtual_time
    };
    let fast = run(1);
    let slow = run(32);
    assert!(slow > 2 * fast, "virtual time must grow with link delay: {fast} vs {slow}");
}
