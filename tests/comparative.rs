//! Integration tests for the comparative claims: the §3 strawmen behave
//! as the paper says, and the finder trait compares like with like.

use baselines::{
    run_neighbors_neighbors, run_shingles, DistNearCliqueFinder, ExactFinder, NearCliqueFinder,
    PeelFinder, QuasiFinder, ShinglesConfig, ShinglesFinder,
};
use graphs::generators::{self, ShinglesGraph};
use graphs::{density, quasi::QuasiCliqueConfig, Graph};
use nearclique::NearCliqueParams;
use rand::SeedableRng;

#[test]
fn claim_1_shingles_never_wins_on_figure_1() {
    let n = 240;
    for &delta in &[0.3f64, 0.5, 0.7] {
        let s = generators::shingles_counterexample(n, delta);
        let eps = 0.9 * ShinglesGraph::claim_epsilon_threshold(delta);
        let need = ((1.0 - eps) * delta * n as f64).ceil() as usize;
        for seed in 0..30 {
            let run = run_shingles(
                &s.graph,
                ShinglesConfig { min_size: 2, min_density: 1.0 - eps },
                seed,
            );
            if let Some(set) = run.largest_set() {
                let qualifies = set.len() >= need && density::is_near_clique(&s.graph, &set, eps);
                assert!(
                    !qualifies,
                    "delta {delta}, seed {seed}: shingles produced {} nodes, \
                     contradicting Claim 1",
                    set.len()
                );
            }
        }
    }
}

#[test]
fn neighbors_neighbors_is_exact_but_wide() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let planted = generators::planted_clique(80, 20, 0.05, &mut rng);
    let run = run_neighbors_neighbors(&planted.graph, 3);
    let set = run.largest_set().expect("clique found");
    // Correct: it finds a maximum clique.
    assert!(set.len() >= 20);
    assert!(density::is_near_clique(&planted.graph, &set, 0.0));
    // But wide: its messages dwarf the CONGEST budget.
    assert!(
        run.metrics.max_message_bits > nearclique::msg::max_message_bits(),
        "NN width {} should exceed the CONGEST budget",
        run.metrics.max_message_bits
    );
}

#[test]
fn finder_trait_is_consistent_across_algorithms() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let planted = generators::planted_clique(100, 25, 0.05, &mut rng);
    let g = &planted.graph;

    let dist = DistNearCliqueFinder {
        params: NearCliqueParams::for_expected_sample(0.25, 8.0, 100).unwrap().with_lambda(2),
    };
    let shingles = ShinglesFinder { config: ShinglesConfig::default() };
    let peel = PeelFinder { min_size: 15 };
    let quasi = QuasiFinder { config: QuasiCliqueConfig::default() };
    let exact = ExactFinder;
    let finders: Vec<&dyn NearCliqueFinder> = vec![&dist, &shingles, &peel, &quasi, &exact];

    let scores = baselines::score_all(g, &finders, 5);
    assert_eq!(scores.len(), 5);
    // Exact is the densest-at-its-size yardstick.
    let exact_score = scores.iter().find(|s| s.name == "exact-max-clique").unwrap();
    assert_eq!(exact_score.density, 1.0);
    assert!(exact_score.size >= 25);
    // Every set is a valid node set of g.
    for s in &scores {
        assert!(s.size <= g.node_count());
        assert!((0.0..=1.0).contains(&s.density));
    }
}

#[test]
fn shingles_succeeds_where_it_should() {
    // Fairness check: the strawman is not a punching bag — on a clean
    // disjoint-clique instance it does fine, exactly as the paper implies
    // (its failure is specific to adversarial overlap structure).
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cg = generators::caveman(5, 20, 0.0, &mut rng);
    let mut wins = 0;
    for seed in 0..10 {
        let run = run_shingles(&cg.graph, ShinglesConfig { min_size: 10, min_density: 0.95 }, seed);
        if let Some(set) = run.largest_set() {
            if set.len() == 20 {
                wins += 1;
            }
        }
    }
    assert!(wins >= 8, "shingles found a full cave only {wins}/10 times");
}

#[test]
fn property_tester_agrees_with_distributed_verdicts() {
    use proptester::{CountingOracle, RhoCliqueTester, TesterParams};
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let planted = generators::planted_near_clique(300, 150, 0.0156, 0.02, &mut rng);
    let null = generators::gnp(300, 0.1, &mut rng);

    let tester = RhoCliqueTester::new(TesterParams {
        rho: 0.5,
        epsilon: 0.25,
        sample_size: 8,
        eval_size: 60,
    });
    let count = |g: &Graph| {
        (0..10)
            .filter(|&s| {
                let oracle = CountingOracle::new(g);
                let mut r = rand::rngs::StdRng::seed_from_u64(s);
                tester.test(&oracle, &mut r)
            })
            .count()
    };
    let on_planted = count(&planted.graph);
    let on_null = count(&null);
    assert!(
        on_planted > on_null,
        "tester must separate planted ({on_planted}/10) from null ({on_null}/10)"
    );
}
