//! Bring-your-own-graph: run `DistNearClique` on an edge list.
//!
//! ```text
//! cargo run --release --example custom_graph -- path/to/edges.txt [epsilon]
//! ```
//!
//! The file format is one `u v` pair per line (`#` comments allowed),
//! node ids `0..n`. Without an argument, a small built-in demo graph is
//! used. Alongside the discovery run, the example prints the structural
//! diagnostics (`k`-cores, triangles) a practitioner would check first.

use near_clique_suite::prelude::*;

const DEMO: &str = "# two dense groups bridged by one edge
0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n0 4\n1 4\n2 4\n3 4
5 6\n5 7\n5 8\n6 7\n6 8\n7 8\n5 9\n6 9\n7 9\n8 9
4 5
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first() {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            println!("(no file given — using the built-in demo graph)");
            DEMO.to_string()
        }
    };
    let epsilon: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0.25);

    let g = graphs::io::parse_edge_list(&text, None)?;
    let n = g.node_count();
    println!("graph: {} nodes, {} edges, max degree {}", n, g.edge_count(), g.max_degree());

    // Structural diagnostics.
    let degeneracy = graphs::kcore::degeneracy(&g);
    let triangles = graphs::triangles::triangle_count(&g);
    let clustering = graphs::triangles::global_clustering(&g);
    println!(
        "diagnostics: degeneracy {degeneracy}, {triangles} triangles, \
         clustering {clustering:.3}"
    );

    // Discovery: boosted for reliability on unknown data.
    // E|S| scales down on small inputs: the 2^{|S|} enumeration would
    // otherwise dominate (Lemma 5.1).
    let expected_sample = (n as f64 / 3.0).clamp(2.0, 8.0);
    let params = NearCliqueParams::for_expected_sample(epsilon, expected_sample, n)?
        .with_lambda(3)
        .with_min_candidate_size(3)
        .with_max_component_size(12);
    let run = run_near_clique(&g, &params, 0xC0FFEE);
    println!(
        "run: {} rounds, {} messages, widest message {} bits",
        run.metrics.rounds, run.metrics.messages, run.metrics.max_message_bits
    );

    let sets = run.labeled_sets();
    if sets.is_empty() {
        println!("no near-clique above the size floor was found (try more boosting)");
    }
    for (label, set) in sets {
        println!(
            "near-clique {label}: {} nodes {:?}, density {:.3}",
            set.len(),
            set.to_vec(),
            density::density(&g, &set),
        );
    }
    check_labels(&g, &run.labels, params.epsilon)?;
    println!("outputs verified against the Lemma 5.3 guarantee");
    Ok(())
}
