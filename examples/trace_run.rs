//! Exportable timelines: the same staged `DistNearClique` run under
//! classic synchronizer α and the batched Safe-wave variant, with the
//! `congest::obs` recording plane switched on.
//!
//! The recorder rides *inside* the engine: every pulse begin, payload
//! delivery, Ack/Safe envelope, coalesced Safe wave and retransmission
//! lands in a preallocated ring as a typed, timestamped record, while a
//! streaming profile aggregates histograms and high-water marks in O(1)
//! per event. This example
//!
//! 1. runs the planted-near-clique workload under both synchronizers
//!    with tracing on,
//! 2. exports each timeline as Chrome trace-event JSON — load
//!    `target/trace_alpha.json` / `target/trace_batched.json` in
//!    Perfetto or `chrome://tracing` to scrub through the run, one
//!    track per node plus a control-plane track — and
//! 3. prints the two run profiles side by side: where classic α burns
//!    its control plane (per-edge Ack/Safe floods), and what the
//!    batched waves recover.
//!
//! ```text
//! cargo run --release --example trace_run
//! ```

use near_clique_suite::prelude::*;
use nearclique::{DistNearClique, SamplePlan};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The async_scheduling workload: a 300-node instance with a planted
    // ε³-near clique on 120 nodes, staged under a §4.1 phase plan.
    let epsilon: f64 = 0.25;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let planted = generators::planted_near_clique(300, 120, epsilon.powi(3), 0.015, &mut rng);
    let params = NearCliqueParams::for_expected_sample(epsilon, 7.0, 300)?;
    let seed = 11;
    let plan = near_clique_phase_plan(&planted.graph, &params, seed, 1_000_000);
    let delay = DelayModel::Uniform { max_delay: 8 };

    let traced = |sync: SyncModel| -> (RunProfile, String) {
        let sample = SamplePlan::draw(planted.graph.node_count(), params.lambda, params.p, seed);
        let mut driver = Session::on(&planted.graph)
            .seed(seed)
            .engine(Engine::Async { delay, sync, fault: FaultModel::None, churn: ChurnModel::None })
            .limits(RunLimits::rounds(plan.total_pulses()))
            .trace(TraceConfig::events(1 << 16))
            .build_with(|endpoint| {
                let flags =
                    (0..params.lambda).map(|v| sample.in_sample(v, endpoint.index)).collect();
                DistNearClique::new(params.clone(), flags)
            });
        let report = driver.run_phased(&plan, &mut ());
        let sink = driver.trace_sink().expect("tracing was enabled");
        let profile = report.profile.expect("traced runs attach a profile");
        (profile, sink.to_chrome_json())
    };

    let (alpha, alpha_json) = traced(SyncModel::Alpha);
    let (batched, batched_json) = traced(SyncModel::BatchedAlpha);

    std::fs::create_dir_all("target")?;
    std::fs::write("target/trace_alpha.json", &alpha_json)?;
    std::fs::write("target/trace_batched.json", &batched_json)?;
    println!(
        "wrote target/trace_alpha.json ({} bytes) and target/trace_batched.json ({} bytes)",
        alpha_json.len(),
        batched_json.len()
    );
    println!("open either file in Perfetto or chrome://tracing to scrub the timeline\n");

    println!("{:<28} {:>14} {:>14}", "profile", "alpha", "batched_alpha");
    let row = |name: &str, a: u64, b: u64| {
        println!("{name:<28} {a:>14} {b:>14}");
    };
    row("records", alpha.records, batched.records);
    row("ring overwrites", alpha.dropped, batched.dropped);
    row("ctrl envelopes sent", alpha.ctrl_sends, batched.ctrl_sends);
    row("coalesced Safe waves", alpha.safe_waves, batched.safe_waves);
    row("pulse occupancy: max", alpha.pulse_occupancy.max(), batched.pulse_occupancy.max());
    row("delivery batch: max", alpha.queue_depth.max(), batched.queue_depth.max());
    row("wheel occupancy: max", alpha.max_wheel_occupancy, batched.max_wheel_occupancy);
    row("queue depth: max", alpha.max_queue_depth, batched.max_queue_depth);
    row(
        "ctrl bits/pulse: mean",
        alpha.ctrl_bits_per_pulse.mean() as u64,
        batched.ctrl_bits_per_pulse.mean() as u64,
    );
    row(
        "payload bits/pulse: mean",
        alpha.payload_bits_per_pulse.mean() as u64,
        batched.payload_bits_per_pulse.mean() as u64,
    );

    assert!(
        batched.ctrl_bits_per_pulse.sum() < alpha.ctrl_bits_per_pulse.sum(),
        "the batched synchronizer must spend fewer control bits"
    );
    println!(
        "\nbatched α control-bit saving: {:.1}%",
        100.0
            * (1.0
                - batched.ctrl_bits_per_pulse.sum() as f64
                    / alpha.ctrl_bits_per_pulse.sum() as f64)
    );
    Ok(())
}
