//! The fault & churn plane, side by side: one gossip protocol, one
//! seed, five wire conditions.
//!
//! A beacon-gossip protocol (every node re-broadcasts the largest ID it
//! has seen, every pulse) runs on the same G(n,p) instance under
//!
//! 1. a **fault-free** asynchronous schedule (the baseline),
//! 2. seeded per-send **message loss** (`FaultModel::Drop`, 1% and 5%)
//!    and periodic **link flaps** (`FaultModel::LinkFlap`) — both fully
//!    *masked* by deterministic retransmission: outputs are
//!    bit-identical to the baseline, only the overhead column grows,
//! 3. a mid-run **crash** of five nodes (`FaultModel::Crash`), once
//!    permanent and once with recovery — the *degradation* regime: the
//!    run honestly reports `Termination::Degraded` with the number of
//!    payloads lost, and with recovery the victims rejoin and converge.
//!
//! 4. and, on top of the fault-free schedule, real **membership
//!    churn** (`ChurnModel::Mixed`): three staggered late joins plus
//!    one graceful leave, each opening an epoch — the per-epoch
//!    membership timeline, the `on_join`/`on_leave` handoff transitions
//!    observed by live peers, and the itemized retirement of the
//!    leaver's in-flight payloads are all printed.
//!
//! Every fault schedule is a pure function of `(seed, FaultModel)`, and
//! every membership schedule of `(seed, ChurnModel)`: re-running this
//! example reproduces every number below, drop for drop and epoch for
//! epoch.
//!
//! ```text
//! cargo run --release --example faulty_network
//! ```

use congest::{
    ChurnEvent, ChurnModel, ChurnPolicy, Context, DelayModel, Driver, Engine, FaultEvent,
    FaultModel, Message, Port, Protocol, RoundDelta, RunLimits, Session, SyncModel, Termination,
};
use near_clique_suite::prelude::generators;
use rand::SeedableRng;

#[derive(Clone, Debug)]
struct Word(u64);
impl Message for Word {
    fn bit_size(&self) -> usize {
        64
    }
}

/// Beacon gossip that keeps talking: every pulse, every node
/// re-broadcasts the largest ID it has seen — so survivors (and
/// recovered crash victims) always re-converge.
struct Beacon {
    best: u64,
    peer_downs: usize,
    peer_ups: usize,
}

impl Protocol for Beacon {
    type Msg = Word;
    type Output = u64;

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        self.best = ctx.id();
        ctx.broadcast(Word(self.best));
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        for &(_, Word(w)) in inbox {
            self.best = self.best.max(w);
        }
        let token = self.best;
        ctx.broadcast(Word(token));
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn on_peer_down(&mut self, _ctx: &mut Context<'_, Word>, _port: Port) {
        self.peer_downs += 1;
    }

    fn on_peer_up(&mut self, _ctx: &mut Context<'_, Word>, _port: Port) {
        self.peer_ups += 1;
    }

    fn output(&self) -> u64 {
        self.best
    }
}

/// Streams the fault log: victim transitions and the recovery pulse.
#[derive(Default)]
struct FaultLog {
    downs: Vec<(u32, u64)>,
    ups: Vec<(u32, u64)>,
    wire_drops: u64,
    swallowed: u64,
}

impl congest::Observer for FaultLog {
    fn on_round(&mut self, _round: u64, _delta: &RoundDelta) {}

    fn on_fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Dropped { .. } => self.wire_drops += 1,
            FaultEvent::Lost { .. } => self.swallowed += 1,
            FaultEvent::NodeDown { node, pulse } => self.downs.push((node, pulse)),
            FaultEvent::NodeUp { node, pulse } => self.ups.push((node, pulse)),
        }
    }
}

/// The Beacon with membership handoff: same gossip, plus the
/// `on_join`/`on_leave` hooks counting the epoch transitions this
/// node's ports went through.
struct HandoffBeacon {
    best: u64,
    joins: usize,
    leaves: usize,
}

impl Protocol for HandoffBeacon {
    type Msg = Word;
    type Output = (u64, usize, usize);

    fn init(&mut self, ctx: &mut Context<'_, Word>) {
        self.best = self.best.max(ctx.id());
        ctx.broadcast(Word(self.best));
    }

    fn step(&mut self, ctx: &mut Context<'_, Word>, inbox: &[(Port, Word)]) {
        for &(_, Word(w)) in inbox {
            self.best = self.best.max(w);
        }
        let token = self.best;
        ctx.broadcast(Word(token));
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn on_join(&mut self, _ctx: &mut Context<'_, Word>, _port: Port) {
        self.joins += 1;
    }

    fn on_leave(&mut self, _ctx: &mut Context<'_, Word>, _port: Port) {
        self.leaves += 1;
    }

    fn output(&self) -> (u64, usize, usize) {
        (self.best, self.joins, self.leaves)
    }
}

/// Streams the churn log: epoch boundaries and retired payloads.
#[derive(Default)]
struct ChurnLog {
    boundaries: Vec<ChurnEvent>,
    retired: u64,
}

impl congest::Observer for ChurnLog {
    fn on_round(&mut self, _round: u64, _delta: &RoundDelta) {}

    fn on_churn(&mut self, event: ChurnEvent) {
        match event {
            ChurnEvent::Join { .. } | ChurnEvent::Leave { .. } => self.boundaries.push(event),
            ChurnEvent::Retired { .. } => self.retired += 1,
        }
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let g = generators::gnp(200, 0.04, &mut rng);
    let seed = 21;
    let budget = 48;

    let conditions: Vec<(&str, FaultModel)> = vec![
        ("fault-free", FaultModel::None),
        ("drop 1%", FaultModel::Drop { p_millis: 10 }),
        ("drop 5%", FaultModel::Drop { p_millis: 50 }),
        ("link flap 3/9", FaultModel::LinkFlap { down_len: 3, up_len: 9 }),
        ("crash 5", FaultModel::Crash { victims: 5, at_pulse: 12, recover_after: 0 }),
        ("crash+recover", FaultModel::Crash { victims: 5, at_pulse: 12, recover_after: 18 }),
    ];

    println!(
        "beacon gossip on G(200, 0.04), seed {seed}, {budget}-pulse budget, \
         per-link delays ≤ 4, batched synchronizer\n"
    );
    println!(
        "{:<15} {:>8} {:>9} {:>8} {:>7} {:>11} {:>9}  report",
        "fault model", "payload", "retrans.", "dropped", "lost", "virt. time", "outputs"
    );

    let mut baseline: Option<Vec<u64>> = None;
    for (label, fault) in conditions {
        let mut driver = Session::on(&g)
            .seed(seed)
            .engine(Engine::Async {
                delay: DelayModel::PerLink { max_delay: 4 },
                sync: SyncModel::BatchedAlpha,
                fault,
                churn: ChurnModel::None,
            })
            .limits(RunLimits::rounds(budget))
            .build_with(|_| Beacon { best: 0, peer_downs: 0, peer_ups: 0 });
        let mut log = FaultLog::default();
        let report = driver.drive(RunLimits::rounds(budget), &mut log);
        let outputs = driver.outputs();

        let verdict = match &baseline {
            None => {
                baseline = Some(outputs.clone());
                "baseline"
            }
            Some(base) if *base == outputs => "== base",
            Some(_) => "DIVERGED",
        };
        let summary = match report.termination {
            Termination::Degraded { lost } => {
                let recovery = log
                    .ups
                    .first()
                    .map_or_else(|| "no recovery".to_string(), |&(_, p)| format!("rejoin @{p}"));
                format!(
                    "Degraded {{ lost: {lost} }}; {} down @{}, {recovery}",
                    log.downs.len(),
                    log.downs.first().map_or(0, |&(_, p)| p),
                )
            }
            t => format!("{t:?}"),
        };
        println!(
            "{:<15} {:>8} {:>9} {:>8} {:>7} {:>11} {:>9}  {}",
            label,
            report.metrics.messages,
            report.overhead.retransmissions,
            report.overhead.dropped_messages,
            report.overhead.dropped_messages - report.overhead.retransmissions,
            report.overhead.virtual_time,
            verdict,
            summary,
        );

        // The masked regime really is masked — bit for bit.
        if matches!(fault, FaultModel::Drop { .. } | FaultModel::LinkFlap { .. }) {
            assert_eq!(Some(&outputs), baseline.as_ref(), "{label}: masking contract violated");
            assert_eq!(report.overhead.dropped_messages, report.overhead.retransmissions);
        }
        // And the degraded regime honestly reports its losses.
        if matches!(fault, FaultModel::Crash { .. }) {
            assert!(matches!(report.termination, Termination::Degraded { .. }));
            assert_eq!(log.swallowed + log.wire_drops, report.overhead.dropped_messages);
        }
    }

    println!(
        "\nmasked faults (drop, flap) leave every output bit-identical — only \
         retransmissions and virtual time grow; crashes degrade the run, and the report \
         says by exactly how much"
    );

    // ── The churn plane: membership itself changes mid-run. ──────────
    // Three seeded nodes start *outside* the member set and join one by
    // one; later, one member leaves gracefully. Every event opens an
    // epoch over the same static topology.
    let churn = ChurnModel::Mixed {
        joiners: 3,
        leavers: 1,
        at_pulse: 8,
        spacing: 6,
        policy: ChurnPolicy::Continue,
    };
    let mut driver = Session::on(&g)
        .seed(seed)
        .engine(Engine::Async {
            delay: DelayModel::PerLink { max_delay: 4 },
            sync: SyncModel::BatchedAlpha,
            fault: FaultModel::None,
            churn,
        })
        .limits(RunLimits::rounds(budget))
        .build_with(|_| HandoffBeacon { best: 0, joins: 0, leaves: 0 });
    let mut churn_log = ChurnLog::default();
    let report = driver.drive(RunLimits::rounds(budget), &mut churn_log);
    let outputs = driver.outputs();

    println!(
        "\nmembership churn on the same schedule: three staggered joins, one graceful \
         leave ({churn:?})\n"
    );
    for (event, info) in churn_log.boundaries.iter().zip(&report.epochs) {
        let transition = match event {
            ChurnEvent::Join { node, pulse, .. } => {
                format!("node {node:>3} joins  @ pulse {pulse}")
            }
            ChurnEvent::Leave { node, pulse, .. } => {
                format!("node {node:>3} leaves @ pulse {pulse}")
            }
            ChurnEvent::Retired { .. } => unreachable!("boundaries hold joins/leaves only"),
        };
        println!("  epoch {:>2}: {transition:<28} -> {} members", info.epoch, info.members);
    }
    let (hook_joins, hook_leaves) =
        outputs.iter().fold((0, 0), |(j, l), &(_, joins, leaves)| (j + joins, l + leaves));
    println!(
        "\n  {} epochs ({} joins, {} leaves); peers observed {hook_joins} on_join and \
         {hook_leaves} on_leave handoffs; {} in-flight payloads retired (each itemized)",
        report.overhead.epochs,
        report.overhead.joins,
        report.overhead.leaves,
        report.overhead.retired_messages,
    );
    assert_eq!(report.overhead.epochs, 4, "3 joins + 1 leave open 4 epochs");
    assert_eq!(churn_log.retired, report.overhead.retired_messages, "retirement is itemized");
    assert!(
        !matches!(report.termination, Termination::Degraded { .. }),
        "graceful churn never degrades the run"
    );
    println!(
        "\nchurn is graceful reconfiguration, not failure: the synchronizer's pulse \
         structure spans every epoch, and the member set after the last epoch converged \
         on one beacon value"
    );
}
