//! The Figure 1 pitfall: why the "obvious" shingles algorithm fails.
//!
//! Claim 1 of the paper constructs a family (cliques C₁, C₂ flanked by
//! independent sets I₁, I₂) on which the shingles heuristic provably
//! cannot output a large near-clique — whichever node draws the minimum
//! shingle, its candidate set is either diluted (density 2δ/(1+δ)) or
//! tiny (≈ δn/2). This example walks the two cases live and shows
//! `DistNearClique` finding the planted δn-clique on the same graph.
//!
//! ```text
//! cargo run --release --example shingles_pitfall
//! ```

use graphs::generators::ShinglesGraph;
use near_clique_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400;
    let delta = 0.5;
    let s = generators::shingles_counterexample(n, delta);
    let clique = s.clique();
    println!(
        "figure-1 graph: n = {n}, planted clique C = C1 ∪ C2 of {} nodes (density 1.0)",
        clique.len()
    );
    let eps = 0.9 * ShinglesGraph::claim_epsilon_threshold(delta);
    let target = ((1.0 - eps) * delta * n as f64).ceil() as usize;
    println!(
        "claim 1: for ε = {eps:.3}, shingles cannot output an ε-near clique of ≥ {target} nodes"
    );
    println!();

    // Shingles, many seeds: its best output never qualifies.
    let config = ShinglesConfig { min_size: 2, min_density: 1.0 - eps };
    let mut best = (0usize, 0.0f64);
    for seed in 0..25 {
        if let Some(set) = run_shingles(&s.graph, config, seed).largest_set() {
            let d = density::density(&s.graph, &set);
            if set.len() > best.0 {
                best = (set.len(), d);
            }
            // Where did the minimum land? Diagnose the case analysis.
            if seed < 3 {
                // Paper's case analysis: if the minimum fell inside the
                // clique, the candidate C₁∪C₂∪I₁ is large but diluted
                // (density 2δ/(1+δ)); if it fell in an independent set,
                // the candidate is C₁∪{vmin} — dense but half-sized.
                let case = if d < 1.0 - eps {
                    "case 1: vmin in C — candidate diluted by an independent set"
                } else {
                    "case 2: vmin in I — candidate confined to half the clique"
                };
                println!(
                    "shingles seed {seed}: best set {} nodes at density {d:.3} ({case})",
                    set.len()
                );
            }
        }
    }
    println!(
        "shingles best over 25 seeds: {} nodes at density {:.3} — target was {target}",
        best.0, best.1
    );
    println!();

    // DistNearClique on the same graph.
    let params = NearCliqueParams::for_expected_sample(0.25, 9.0, n)?.with_min_candidate_size(10);
    let run = run_near_clique(&s.graph, &params, 77);
    match run.largest_set() {
        Some(found) => {
            let d = density::density(&s.graph, &found);
            let overlap = found.intersection_count(&clique);
            println!(
                "DistNearClique: {} nodes at density {d:.3} ({overlap} of them in C) — \
                 qualifies: {}",
                found.len(),
                found.len() >= target && d >= 1.0 - eps
            );
        }
        None => println!("DistNearClique: nothing this seed (constant success probability)"),
    }
    Ok(())
}
