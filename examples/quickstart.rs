//! Quickstart: find a planted near-clique with `DistNearClique`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use near_clique_suite::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 400-node graph hiding an ε³-near clique on 200 nodes
    //    (ε = 0.25 → planted density ≥ 1 − 0.0156) over sparse noise.
    let epsilon: f64 = 0.25;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let planted = generators::planted_near_clique(400, 200, epsilon.powi(3), 0.02, &mut rng);
    println!(
        "instance: n = {}, planted |D| = {} at density {:.4}",
        planted.graph.node_count(),
        planted.planted_size(),
        density::density(&planted.graph, &planted.dense_set),
    );

    // 2. Run the paper's algorithm: ε, and p chosen so E|S| = 8.
    let params = NearCliqueParams::for_expected_sample(epsilon, 8.0, 400)?;
    let run = run_near_clique(&planted.graph, &params, 7);
    println!(
        "execution: {} rounds, {} messages, widest message {} bits, |S| = {}",
        run.metrics.rounds,
        run.metrics.messages,
        run.metrics.max_message_bits,
        run.sample_size(0),
    );

    // 3. Inspect the output.
    let found = run.largest_set().ok_or("no near-clique found — try another seed")?;
    println!(
        "output: {} nodes, density {:.4}, recall of planted set {:.3}",
        found.len(),
        density::density(&planted.graph, &found),
        planted.recall(&found),
    );

    // 4. Every output carries the unconditional Lemma 5.3 guarantee.
    let checks = check_labels(&planted.graph, &run.labels, params.epsilon)?;
    for c in &checks {
        println!(
            "guarantee: label {} is a {:.3}-near clique (Lemma 5.3 allows up to {:.3})",
            c.label,
            1.0 - c.density,
            c.lemma_bound.min(1.0),
        );
    }

    // 5. And the Theorem 5.7 assertions against the planted ground truth.
    let (size_ok, density_ok) =
        check_theorem_5_7(&planted.graph, &found, &planted.dense_set, epsilon);
    println!("theorem 5.7: size assertion = {size_ok}, density assertion = {density_ok}");
    Ok(())
}
