//! A million-node CONGEST flood without ever materializing the graph.
//!
//! The topology is defined by a seeded [`graphs::EdgeStream`]
//! (G(n, p) at expected degree 16, ~8M edges) and compiled straight
//! into the flat plane's CSR route table by [`congest::Session::on_stream`]
//! — two counted passes over the stream, so peak memory is the final
//! plane plus one `u32` cursor per node, never an edge list or a
//! `graphs::Graph`. Metrics run in [`congest::MetricsMode::Streaming`]
//! (scalar counters only; no per-round histogram for a 10⁶-node run).
//!
//! ```text
//! cargo run --release --example million_node          # n = 1,000,000
//! MILLION_NODE_N=50000 cargo run --release --example million_node
//! ```

use congest::{Context, Driver, Engine, Message, MetricsMode, Port, Protocol, RunLimits, Session};
use graphs::generators::GnpStream;

/// One-bit token: the flood payload.
#[derive(Clone, Debug)]
struct Token;

impl Message for Token {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Flood from node 0: hear once, forward once.
struct Flood {
    is_source: bool,
    heard: bool,
}

impl Protocol for Flood {
    type Msg = Token;
    type Output = bool;

    fn init(&mut self, ctx: &mut Context<'_, Token>) {
        if self.is_source {
            self.heard = true;
            ctx.broadcast(Token);
        }
    }

    fn step(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(Port, Token)]) {
        if !inbox.is_empty() && !self.heard {
            self.heard = true;
            ctx.broadcast(Token);
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) -> bool {
        self.heard
    }
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`);
/// `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let n: usize =
        std::env::var("MILLION_NODE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);
    let p = 16.0 / (n - 1) as f64;
    println!("building flat plane from a streamed G({n}, {p:.2e}) — no materialized graph");

    let start = std::time::Instant::now();
    let mut stream = GnpStream::new(n, p, 2009);
    let mut driver = Session::on_stream(&mut stream)
        .seed(7)
        .engine(Engine::Flat { shards: 1 })
        .metrics(MetricsMode::Streaming)
        .limits(RunLimits::rounds(200))
        .build_with(|e| Flood { is_source: e.index == 0, heard: false });
    println!("plane ready in {:.2?}", start.elapsed());

    let report = driver.run();
    let reached = driver.outputs().iter().filter(|&&heard| heard).count();

    println!(
        "flood: {} rounds, {} messages, {} total bits, {}/{} nodes reached",
        report.rounds, report.metrics.messages, report.metrics.total_bits, reached, n,
    );
    match peak_rss_kb() {
        Some(kb) => println!("peak RSS: {} kB ({:.1} MB)", kb, kb as f64 / 1024.0),
        None => println!("peak RSS: unavailable (no /proc/self/status)"),
    }
}
