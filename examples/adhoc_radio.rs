//! Ad-hoc radio scenario: cluster discovery under CONGEST constraints.
//!
//! Dense subgraphs matter for clustering and conflict analysis in radio
//! ad-hoc networks (Basagni et al. \[4\], Gupta & Walrand \[12\]) — settings
//! where bandwidth per link per slot is genuinely scarce, i.e. exactly
//! the CONGEST model. This example builds a caveman-style cluster
//! topology, runs the algorithm, and prints the communication profile a
//! radio deployment would care about.
//!
//! ```text
//! cargo run --release --example adhoc_radio
//! ```

use near_clique_suite::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 clusters of 24 radios; 10% of links rewired across clusters.
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let cg = generators::caveman(12, 24, 0.10, &mut rng);
    let n = cg.graph.node_count();
    println!(
        "radio network: {} nodes, {} links, max degree {}",
        n,
        cg.graph.edge_count(),
        cg.graph.max_degree()
    );

    let params = NearCliqueParams::for_expected_sample(0.3, 9.0, n)?.with_min_candidate_size(10);
    let run = run_near_clique(&cg.graph, &params, 53);

    // The communication profile: this is what CONGEST buys you.
    println!("profile:");
    println!("  rounds (slots)        : {}", run.metrics.rounds);
    println!("  messages              : {}", run.metrics.messages);
    println!("  widest message        : {} bits", run.metrics.max_message_bits);
    println!("  peak per-slot traffic : {} messages", run.metrics.peak_messages_per_round());
    println!("  mean per-slot traffic : {:.1} messages", run.metrics.mean_messages_per_round());

    // Phase profile: where the slots went (the §4.1 wrapper would
    // allocate per-phase budgets along exactly these spans).
    println!("phase profile:");
    for window in run.phase_trace.windows(2) {
        let (v, name, start) = window[0];
        let (_, _, end) = window[1];
        println!("  v{v} {name:<14} rounds {start:>4} .. {end:<4}");
    }
    if let Some(&(v, name, start)) = run.phase_trace.last() {
        println!("  v{v} {name:<14} rounds {start:>4} .. {}", run.metrics.rounds);
    }

    let sets = run.labeled_sets();
    println!("clusters found: {}", sets.len());
    for (label, set) in sets.iter().take(5) {
        println!(
            "  cluster {label}: {} radios, density {:.3}, best-Jaccard vs planted {:.3}",
            set.len(),
            density::density(&cg.graph, set),
            cg.best_jaccard(set),
        );
    }

    // Sanity: outputs always satisfy Lemma 5.3 (the paper's unconditional
    // guarantee), whatever the topology.
    check_labels(&cg.graph, &run.labels, params.epsilon)?;
    println!("all outputs satisfy the Lemma 5.3 density guarantee");
    Ok(())
}
