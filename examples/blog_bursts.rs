//! Blog-burst scenario: track a dense "event" through time.
//!
//! Kumar et al. \[14\] observed that blogspace evolves in bursts: a
//! significant event appears as a dense subgraph that forms, peaks and
//! dissolves. This example generates a snapshot sequence with one planted
//! burst and runs `DistNearClique` on every snapshot; the output sizes
//! trace the burst window.
//!
//! ```text
//! cargo run --release --example blog_bursts
//! ```

use near_clique_suite::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let steps = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let burst = generators::blog_burst(
        n,
        steps,
        /* event_size */ 80,
        /* event_window */ (2, 5),
        /* peak_p */ 0.95,
        /* background_p */ 0.02,
        &mut rng,
    );
    println!(
        "blog graph: {} blogs, {} snapshots, planted event of 80 blogs in window {:?}",
        n, steps, burst.event_window
    );
    println!();
    println!("t  event-density  found-size  found-density  event-recall");

    let params = NearCliqueParams::for_expected_sample(0.25, 8.0, n)?
        .with_lambda(2)
        .with_min_candidate_size(15);
    for (t, snapshot) in burst.snapshots.iter().enumerate() {
        let run = run_near_clique(snapshot, &params, 101 + t as u64);
        let event_density = density::density(snapshot, &burst.event_set);
        match run.largest_set() {
            Some(found) => {
                let recall = found.intersection_count(&burst.event_set) as f64
                    / burst.event_set.len() as f64;
                println!(
                    "{t}  {event_density:13.3}  {:10}  {:13.3}  {recall:12.3}",
                    found.len(),
                    density::density(snapshot, &found),
                );
            }
            None => println!("{t}  {event_density:13.3}  {:>10}  {:>13}  {:>12}", "-", "-", "-"),
        }
    }
    println!();
    println!("expect: '-' (or small sets) outside the window, large dense sets at the peak");
    Ok(())
}
