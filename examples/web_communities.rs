//! Web-communities scenario: discover "tightly knit communities".
//!
//! The paper's introduction motivates near-clique discovery with Web
//! analysis: dense subgraphs are the "tightly knit communities" that skew
//! link-based ranking (Lempel & Moran's SALSA \[15\]). Real crawls carry no
//! ground truth, so this example plants overlapping communities, runs the
//! distributed algorithm, and cross-checks against the centralized
//! peeling baseline.
//!
//! ```text
//! cargo run --release --example web_communities
//! ```

use baselines::{NearCliqueFinder, PeelFinder};
use near_clique_suite::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 500;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let cg = generators::overlapping_communities(
        n, /* count */ 4, /* size */ 70, /* overlap */ 12,
        /* internal_p */ 0.92, /* background_p */ 0.015, &mut rng,
    );
    println!(
        "web graph: {} pages, {} links, {} planted communities of 70 pages (12 shared)",
        cg.graph.node_count(),
        cg.graph.edge_count(),
        cg.communities.len(),
    );

    // Boosted run: λ = 3 versions sharpen the constant success probability.
    let params = NearCliqueParams::for_expected_sample(0.25, 8.0, n)?
        .with_lambda(3)
        .with_min_candidate_size(20);
    let run = run_near_clique(&cg.graph, &params, 23);

    println!(
        "distributed run: {} rounds, {:.1} kb total traffic, widest message {} bits",
        run.metrics.rounds,
        run.metrics.total_bits as f64 / 8.0 / 1024.0,
        run.metrics.max_message_bits,
    );

    let sets = run.labeled_sets();
    if sets.is_empty() {
        println!("no community isolated this seed — boosting raises the odds; try more λ");
    }
    for (label, set) in &sets {
        println!(
            "community {label}: {} pages, density {:.3}, best-Jaccard vs planted {:.3}",
            set.len(),
            density::density(&cg.graph, set),
            cg.best_jaccard(set),
        );
    }

    // Centralized yardstick on the same graph.
    let peel = PeelFinder { min_size: 40 };
    let peeled = peel.find(&cg.graph, 0);
    println!(
        "centralized peeling: {} pages at density {:.3} (best-Jaccard {:.3})",
        peeled.len(),
        density::density(&cg.graph, &peeled),
        cg.best_jaccard(&peeled),
    );
    Ok(())
}
