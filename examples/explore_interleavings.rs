//! The interleaving explorer: model-check the asynchronous engine on
//! **every** schedule, not one sample per seed.
//!
//! A sampled `Engine::Async` run witnesses one delivery interleaving.
//! `congest::Explore` exhausts *all of them* on a tiny graph: it scripts
//! every per-send delay draw over `1..=bound`, walks the resulting
//! schedule tree depth-first, prunes branches that reconverge (a
//! canonical state fingerprint detects them), and checks an invariant
//! suite on every reachable state — synchronizer α's ±1 pulse skew,
//! output/metrics equivalence against the flat synchronous engine, the
//! fault plane's masking identity, and deadlock freedom.
//!
//! This example
//!
//! 1. exhausts a flood on a triangle under both synchronizers (with a
//!    25% seeded drop rate on the second pass) and prints the explored
//!    state counts,
//! 2. shows the raw (unpruned) schedule tree for comparison,
//! 3. plants a deliberately order-sensitive "invariant" to manufacture
//!    a counterexample, serializes its `DelayTrace`, and replays it —
//!    bit for bit — through the ordinary `Engine::Async` via
//!    `DelayModel::Replay`.
//!
//! Every number below is deterministic: same walk, same counts, every
//! run.
//!
//! ```text
//! cargo run --release --example explore_interleavings
//! ```

use congest::explore::{ExploreState, Invariant};
use congest::{
    ChurnModel, Context, DelayTrace, Engine, Explore, FaultModel, Message, Port, Protocol,
    RunLimits, Session, SyncModel,
};
use graphs::GraphBuilder;

#[derive(Clone, Debug, Hash)]
struct Rumor;
impl Message for Rumor {
    fn bit_size(&self) -> usize {
        1
    }
}

/// The canonical flood: the source announces, everyone forwards once.
/// `Clone + Hash` is all the explorer asks of a protocol.
#[derive(Clone, Debug, Hash)]
struct Flood {
    source: bool,
    heard_at: Option<u64>,
}

impl Protocol for Flood {
    type Msg = Rumor;
    type Output = Option<u64>;

    fn init(&mut self, ctx: &mut Context<'_, Rumor>) {
        if self.source {
            self.heard_at = Some(0);
            ctx.broadcast(Rumor);
        }
    }

    fn step(&mut self, ctx: &mut Context<'_, Rumor>, inbox: &[(Port, Rumor)]) {
        if !inbox.is_empty() && self.heard_at.is_none() {
            self.heard_at = Some(ctx.round());
            ctx.broadcast(Rumor);
        }
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn output(&self) -> Option<u64> {
        self.heard_at
    }
}

fn make_flood(e: &congest::Endpoint) -> Flood {
    Flood { source: e.index == 0, heard_at: None }
}

/// A mutant predicate that flags "slow" schedules: any interleaving
/// whose virtual completion time reaches the threshold. Genuinely
/// schedule-dependent — only some delay assignments trigger it — so it
/// manufactures a counterexample the explorer must pin with a trace.
struct SlowFinish {
    at_least: u64,
}

impl Invariant<Flood> for SlowFinish {
    fn name(&self) -> &'static str {
        "slow_finish"
    }

    fn on_schedule_end(&self, state: &ExploreState<'_, Flood>) -> Result<(), String> {
        let vt = state.overhead().virtual_time;
        if vt >= self.at_least {
            Err(format!("virtual_time={vt}"))
        } else {
            Ok(())
        }
    }
}

fn main() {
    let triangle = {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    };

    // ── 1. Exhaust the schedule space ────────────────────────────────
    println!("flood on a triangle, delay bound 2, one pulse — every interleaving:");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>7} {:>11}",
        "config", "states", "schedules", "deduped", "depth", "violations"
    );
    for sync in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
        for (fname, fault) in
            [("none", FaultModel::None), ("drop25", FaultModel::Drop { p_millis: 250 })]
        {
            let r = Explore::on(&triangle)
                .seed(7)
                .bound(2)
                .budget(1)
                .sync(sync)
                .fault(fault)
                .audit_fingerprints(true)
                .run_with(make_flood);
            assert_eq!(r.fingerprint_collisions, 0);
            println!(
                "{:<14} {:>9} {:>10} {:>9} {:>7} {:>11}",
                format!("{:?}/{fname}", sync),
                r.states,
                r.schedules,
                r.deduped,
                r.max_depth,
                r.violations.len()
            );
        }
    }
    println!();
    println!("(schedules = walks reaching a *distinct* end state: every interleaving");
    println!(" reconverges to one confluent outcome — the Awerbuch reduction, checked");
    println!(" against the flat engine on every completed schedule.)");

    // ── 2. The raw tree, pruning off ─────────────────────────────────
    let raw = Explore::on(&triangle)
        .seed(7)
        .bound(2)
        .budget(1)
        .sync(SyncModel::BatchedAlpha)
        .dedup(false)
        .run_with(make_flood);
    println!();
    println!(
        "pruning off (BatchedAlpha): {} raw schedules walked end-to-end, {} states",
        raw.schedules, raw.states
    );

    // ── 3. Manufacture a counterexample, replay its trace ────────────
    let path3 = {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    };
    let report = Explore::on(&path3)
        .seed(11)
        .bound(2)
        .budget(2)
        .run_checked(make_flood, vec![Box::new(SlowFinish { at_least: 5 })]);
    let violation = report.violations.first().expect("some schedule finishes slowly");
    println!();
    println!("mutant invariant '{}' flagged: {}", violation.invariant, violation.detail);
    println!("its delay trace, in committable text form:");
    for line in violation.trace.to_text().lines() {
        println!("    {line}");
    }

    // Round-trip the trace exactly as a regression fixture would, then
    // replay it through the ordinary engine.
    let trace = DelayTrace::from_text(&violation.trace.to_text()).expect("round-trips");
    let run = || {
        Session::on(&path3)
            .seed(11)
            .engine(Engine::Async {
                delay: trace.register(),
                sync: SyncModel::Alpha,
                fault: FaultModel::None,
                churn: ChurnModel::None,
            })
            .limits(RunLimits::rounds(2))
            .run_with(make_flood)
    };
    let (outputs, report_a) = run();
    let (_, report_b) = run();
    assert_eq!(report_a.overhead, report_b.overhead, "replay is deterministic");
    println!();
    println!(
        "replayed through Engine::Async: outputs {:?}, virtual_time {} (= the flagged {})",
        outputs,
        report_a.overhead.virtual_time,
        violation.detail.strip_prefix("virtual_time=").unwrap()
    );
}
