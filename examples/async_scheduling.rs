//! Asynchronous scheduling: delay models × phase plans × synchronizers.
//!
//! `DistNearClique` is analyzed in the synchronous CONGEST model, but
//! §2 of the paper notes it runs unchanged over asynchronous links under
//! a synchronizer. This example exercises the `congest::sched`
//! subsystem end to end:
//!
//! 1. precompute the §4.1 per-phase pulse schedule from a synchronous
//!    dry run (`near_clique_phase_plan`),
//! 2. replay the staged protocol for each of the four link-delay models
//!    under **both** synchronizers — classic α and the batched
//!    Safe-wave variant — and
//! 3. show that labels and the payload ledger are bit-identical to the
//!    synchronous run — only the synchronizer's control-plane cost and
//!    the virtual completion time vary with the schedule — printing the
//!    two control planes side by side, with the batched saving per row.
//!
//! ```text
//! cargo run --release --example async_scheduling
//! ```

use near_clique_suite::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 300-node instance with a planted ε³-near clique on 120 nodes.
    let epsilon: f64 = 0.25;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let planted = generators::planted_near_clique(300, 120, epsilon.powi(3), 0.015, &mut rng);
    let params = NearCliqueParams::for_expected_sample(epsilon, 7.0, 300)?;
    let seed = 11;

    // Synchronous ground truth on the flat engine.
    let sync = run_near_clique(&planted.graph, &params, seed);
    println!(
        "synchronous: {} rounds, {} payload messages, {} payload bits, {} barriers",
        sync.metrics.rounds, sync.metrics.messages, sync.metrics.total_bits, sync.metrics.barriers,
    );

    // The §4.1 schedule: one deterministic pulse budget per phase,
    // derived once and reused across every delay model below.
    let plan = near_clique_phase_plan(&planted.graph, &params, seed, 1_000_000);
    println!(
        "schedule: {} phases, {} pulses total (first: {:?})",
        plan.len(),
        plan.total_pulses(),
        plan.phases().first(),
    );

    println!(
        "\n{:<14} {:<10} {:>10} {:>14} {:>14} {:>12} {:>9}",
        "delay model", "sync", "labels=", "ctrl msgs", "ctrl bits", "virt. time", "saving"
    );
    for delay in [
        DelayModel::Uniform { max_delay: 8 },
        DelayModel::PerLink { max_delay: 8 },
        DelayModel::HeavyTailed { max_delay: 8 },
        DelayModel::Adversarial { max_delay: 8 },
    ] {
        let mut alpha_msgs = 0u64;
        for model in [SyncModel::Alpha, SyncModel::BatchedAlpha] {
            let alpha = run_near_clique_phased(
                &planted.graph,
                &params,
                seed,
                delay,
                model,
                FaultModel::None,
                ChurnModel::None,
                &plan,
            );

            // The Awerbuch reduction, executed: same labels, same payload
            // ledger, pulse for round — under every delay schedule and
            // either synchronizer.
            assert_eq!(alpha.labels, sync.labels);
            assert_eq!(alpha.metrics, sync.metrics);
            assert_eq!(alpha.termination, Termination::Quiescent);

            // What differs is the control plane: α's Ack/Safe flood vs
            // the batched Safe waves, and the virtual completion time.
            let saving = match model {
                SyncModel::Alpha => {
                    alpha_msgs = alpha.overhead.control_messages;
                    String::from("—")
                }
                SyncModel::BatchedAlpha => format!(
                    "{:.1}x",
                    alpha_msgs as f64 / alpha.overhead.control_messages.max(1) as f64
                ),
            };
            println!(
                "{:<14} {:<10} {:>10} {:>14} {:>14} {:>12} {:>9}",
                delay.name(),
                model.name(),
                "yes",
                alpha.overhead.control_messages,
                alpha.overhead.control_bits,
                alpha.overhead.virtual_time,
                saving,
            );
        }
    }

    println!(
        "\nevery delay model and synchronizer found the same {}-node near-clique the \
         synchronous run did",
        sync.largest_set().map_or(0, |s| s.len()),
    );
    Ok(())
}
