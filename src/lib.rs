//! Umbrella crate for the reproduction of Brakerski & Patt-Shamir,
//! *Distributed Discovery of Large Near-Cliques* (PODC 2009).
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). For the library itself start at [`nearclique`]; for the
//! network model at [`congest`]; for workloads at [`graphs::generators`].
//!
//! # The one-minute tour
//!
//! Everything executes through one surface: a [`congest::Session`]
//! selects a graph, a seed and an [`congest::Engine`] — the flat
//! synchronous plane (optionally sharded over threads), the preserved
//! seed engine, or the synchronizer-α asynchronous executor — and every
//! engine returns the same outputs and the same payload metrics for the
//! same seed. The paper's algorithm rides on top via
//! [`nearclique::run_near_clique`]:
//!
//! ```
//! use near_clique_suite::prelude::*;
//! use rand::SeedableRng;
//!
//! // A Web-community-like instance: a planted near-clique in noise.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let planted = graphs::generators::planted_near_clique(300, 150, 0.01, 0.02, &mut rng);
//!
//! // The paper's algorithm, ε = 0.25, E|S| = 8 — one call, which runs a
//! // Session on the flat engine under the hood.
//! let params = NearCliqueParams::for_expected_sample(0.25, 8.0, 300)?;
//! let run = run_near_clique(&planted.graph, &params, 42);
//!
//! // Outputs carry the paper's unconditional guarantee (Lemma 5.3).
//! assert!(check_labels(&planted.graph, &run.labels, params.epsilon).is_ok());
//!
//! // Engine A/B is a one-line change: a 4-shard flat run (or, in test
//! // builds, the frozen seed engine behind congest's `legacy-engine`
//! // feature) through the same entry point.
//! let sharded = run_near_clique_with(
//!     &planted.graph, &params, 42, RunOptions::threaded(4),
//! );
//! assert_eq!(run.labels, sharded.labels);
//! assert_eq!(run.metrics, sharded.metrics);
//!
//! // Custom protocols use Session directly — see `congest`'s docs. The
//! // §2 asynchrony reduction is
//! // `.engine(Engine::Async { delay, sync, fault, churn })` with a
//! // pluggable `DelayModel` (uniform / per-link / heavy-tailed /
//! // adversarial), a pluggable synchronizer (`SyncModel`: classic α, or
//! // the batched Safe-wave variant that cuts the control-plane tax), a
//! // seeded `FaultModel` (message loss and link flaps masked by
//! // deterministic retransmission; node crashes that degrade the run),
//! // and a seeded `ChurnModel` (epoch-versioned membership join/leave);
//! // staged protocols complete under a `PhasePlan` of §4.1 per-phase
//! // pulse budgets — run_near_clique_with derives the schedule
//! // automatically:
//! let alpha = run_near_clique_with(
//!     &planted.graph, &params, 42,
//!     RunOptions::with_engine(Engine::Async {
//!         delay: DelayModel::HeavyTailed { max_delay: 8 },
//!         sync: SyncModel::BatchedAlpha,
//!         fault: FaultModel::Drop { p_millis: 20 },
//!         churn: ChurnModel::None,
//!     }),
//! );
//! // Even with 2% of sends dropped on the wire, retransmission masks
//! // every fault: outputs and payload metrics are bit-identical.
//! assert_eq!(run.labels, alpha.labels);
//! assert_eq!(run.metrics, alpha.metrics);
//! # Ok::<(), nearclique::InvalidParams>(())
//! ```
//!
//! At scale, skip the graph entirely: a seeded [`graphs::EdgeStream`]
//! (e.g. [`graphs::generators::GnpStream`]) feeds
//! [`congest::Session::on_stream`], which compiles the flat plane's
//! route table in two counted passes — peak memory is the final CSR,
//! never an edge list — and runs bit-identically to the materialized
//! path. `examples/million_node.rs` floods a G(10⁶, deg 16) instance
//! this way in under a gigabyte.

#![warn(missing_docs)]

pub use baselines;
pub use congest;
pub use graphs;
pub use nearclique;
pub use proptester;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use baselines::{run_neighbors_neighbors, run_shingles, NearCliqueFinder, ShinglesConfig};
    pub use congest::{
        ChurnEvent, ChurnModel, ChurnPolicy, DelayModel, Driver, Engine, EpochInfo, FaultEvent,
        FaultModel, Metrics, MetricsMode, Mode, Observer, PhaseBudget, PhasePlan, RoundDelta,
        RunLimits, RunProfile, RunReport, Session, SyncModel, Termination, TraceConfig, TraceSink,
    };
    pub use graphs::{density, generators, EdgeStream, FixedBitSet, Graph, GraphBuilder};
    pub use nearclique::{
        check_labels, check_theorem_5_7, near_clique_phase_plan, reference_run, run_near_clique,
        run_near_clique_phased, run_near_clique_with, NearCliqueParams, NearCliqueRun, RunOptions,
        SamplePlan,
    };
}
